"""Deterministic fault injection for the serving fleet.

Fault tolerance that is only exercised by real hardware failures is
untested fault tolerance.  This module gives the fleet a seeded,
reproducible failure schedule: a :class:`FaultPlan` describes *which*
worker misbehaves, *how* (crash mid-decode, hang, drop a finished result
on the floor, slow its pipe), and *when* (at the k-th engine step), and
a worker-side :class:`FaultInjector` executes the schedule from inside
the victim process.  The fuzz harness (``tests/test_fuzz_fleet.py``)
draws thousands of plans from seeds and asserts the fleet's invariants
hold under every one of them: no lost results, no duplicates, exact
token parity with the sequential coach, no leaked KV pages.

Faults only fire in a worker's **first incarnation** — the supervisor's
replacement processes run clean, so every scenario converges instead of
crash-looping forever.

The same schedule is reachable from the environment
(:meth:`FaultPlan.from_env`) for ops drills against a live fleet:
``REPRO_FAULT_WORKER``, ``REPRO_FAULT_CRASH_STEP``,
``REPRO_FAULT_HANG_STEP``, ``REPRO_FAULT_DROP_RESULTS``,
``REPRO_FAULT_SEND_DELAY_S``, ``REPRO_FAULT_TORN_CACHE``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

#: Exit code of an injected crash — distinguishes scheduled faults from
#: genuine worker bugs in the supervisor's logs.
FAULT_EXIT_CODE = 3

#: How long an injected hang sleeps: effectively forever next to any
#: heartbeat timeout, short enough that a leaked process dies on its own.
_HANG_S = 600.0


@dataclass(frozen=True)
class WorkerFaults:
    """The failure schedule of one worker process (first incarnation).

    ``crash_at_step`` / ``hang_at_step`` count the worker's engine pump
    steps, so both fire *mid-decode* with requests in flight — the
    interesting moment for the requeue discipline.  ``drop_results``
    silently discards that many finished results and then crashes: a
    drop without the crash would strand futures (the supervisor believes
    the worker still owns them), so the two are coupled — exactly the
    torn-pipe behaviour of a process dying between completing a job and
    flushing its pipe.  ``send_delay_s`` slows every pipe message to
    stress the supervisor's multiplexing (results arriving interleaved
    with heartbeats and deaths), without changing any outcome.
    """

    crash_at_step: int | None = None
    hang_at_step: int | None = None
    drop_results: int = 0
    send_delay_s: float = 0.0

    @property
    def is_lethal(self) -> bool:
        """Whether this schedule kills the worker (crash, hang, or drop)."""
        return (
            self.crash_at_step is not None
            or self.hang_at_step is not None
            or self.drop_results > 0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A full fleet failure schedule, reproducible from its seed.

    ``workers`` maps worker slot index → that worker's schedule; slots
    absent from the map run clean.  ``torn_cache_write`` additionally
    sabotages the supervisor's drain-time cache persistence with a
    truncated JSON file (simulating a writer killed mid-save), which the
    next fleet must quarantine and recompute around.
    """

    seed: int = 0
    workers: dict[int, WorkerFaults] = field(default_factory=dict)
    torn_cache_write: bool = False

    def for_worker(self, slot: int) -> WorkerFaults | None:
        return self.workers.get(slot)

    @classmethod
    def from_seed(cls, seed: int, n_workers: int, max_step: int = 12) -> FaultPlan:
        """Draw one reproducible scenario: same seed, same schedule.

        Picks 1..n_workers victims (weighted towards one) and one fault
        kind per victim; crash/hang steps land in ``[1, max_step]`` so
        the fault interleaves with real decode work at fleet scale.
        """
        rng = np.random.default_rng(seed)
        n_victims = 1 + int(rng.random() < 0.3 and n_workers > 1)
        victims = rng.choice(n_workers, size=n_victims, replace=False)
        workers: dict[int, WorkerFaults] = {}
        for victim in victims:
            kind = rng.choice(["crash", "hang", "drop", "slow", "none"])
            step = int(rng.integers(1, max_step + 1))
            if kind == "crash":
                faults = WorkerFaults(crash_at_step=step)
            elif kind == "hang":
                faults = WorkerFaults(hang_at_step=step)
            elif kind == "drop":
                faults = WorkerFaults(drop_results=int(rng.integers(1, 3)))
            elif kind == "slow":
                faults = WorkerFaults(send_delay_s=float(rng.uniform(0.001, 0.01)))
            else:
                continue
            workers[int(victim)] = faults
        return cls(
            seed=seed,
            workers=workers,
            torn_cache_write=bool(rng.random() < 0.25),
        )

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> FaultPlan | None:
        """Build a plan from ``REPRO_FAULT_*`` env vars; ``None`` when unset."""
        env = os.environ if environ is None else environ
        crash = env.get("REPRO_FAULT_CRASH_STEP")
        hang = env.get("REPRO_FAULT_HANG_STEP")
        drop = env.get("REPRO_FAULT_DROP_RESULTS")
        delay = env.get("REPRO_FAULT_SEND_DELAY_S")
        torn = env.get("REPRO_FAULT_TORN_CACHE", "") in ("1", "on", "true")
        if not any((crash, hang, drop, delay, torn)):
            return None
        faults = WorkerFaults(
            crash_at_step=int(crash) if crash else None,
            hang_at_step=int(hang) if hang else None,
            drop_results=int(drop) if drop else 0,
            send_delay_s=float(delay) if delay else 0.0,
        )
        slot = int(env.get("REPRO_FAULT_WORKER", "0"))
        workers = {slot: faults} if faults.is_lethal or faults.send_delay_s else {}
        return cls(seed=0, workers=workers, torn_cache_write=torn)


class FaultInjector:
    """Executes one :class:`WorkerFaults` schedule inside the victim.

    The fleet worker loop calls :meth:`on_step` once per engine pump,
    :meth:`on_result` as each finished job is about to be reported, and
    :meth:`before_send` around every pipe write.  All hooks are no-ops
    once the schedule is spent, and the injector for a clean worker is
    simply never constructed.
    """

    def __init__(self, faults: WorkerFaults):
        self.faults = faults
        self._steps = 0
        self._dropped = 0

    def on_step(self) -> None:
        """Fire crash/hang scheduled at this engine step (pre-step)."""
        self._steps += 1
        if self.faults.crash_at_step is not None:
            if self._steps >= self.faults.crash_at_step:
                os._exit(FAULT_EXIT_CODE)
        if self.faults.hang_at_step is not None:
            if self._steps >= self.faults.hang_at_step:
                time.sleep(_HANG_S)  # killed by the supervisor long before
                os._exit(FAULT_EXIT_CODE)

    def on_result(self) -> bool:
        """True = drop this finished result (and crash once quota is met)."""
        if self._dropped >= self.faults.drop_results:
            return False
        self._dropped += 1
        if self._dropped >= self.faults.drop_results:
            # Dying with unsent results IS the fault being modelled; a
            # drop without death would strand the futures forever.
            os._exit(FAULT_EXIT_CODE)
        return True

    def before_send(self) -> None:
        if self.faults.send_delay_s > 0.0:
            time.sleep(self.faults.send_delay_s)


def write_torn_json(path: str | os.PathLike) -> None:
    """Plant a truncated JSON artifact, as a crashed pre-hardening writer
    would: bytes that parse up to the cut and then stop mid-token."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"revisions": [{"key": "deadbeef", "instr')
