"""The online revision server: asynchronous CoachLM over the batched engine.

:class:`RevisionServer` is the paper's deployment story (Fig. 6) made
*online*: user cases arrive one at a time, are revised by CoachLM before
any human sees them, and the fleet never waits for a batch boundary —
the streaming scheduler slips each request into the first KV slot that
retires.  Request lifecycle::

    submit() ── leakage gate ──┐
        │                      └─ resolved immediately (id-dependent)
        ├─ LRU cache hit ───────── resolved immediately, engine untouched
        ├─ in-flight dedup ─────── attached to the identical leader request
        └─ bounded priority queue (AdmissionError when full)
              └─ worker: deadline check → quality gate → prompt gate
                    └─ streaming scheduler → batched engine → parse/validate
                          └─ future resolved, result cached, followers fanned out

Results are token-for-token identical to
:meth:`CoachLM.revise_dataset` for the same inputs: both paths share
``prepare_revision``/``finalize_revision`` and the same engine greedy
decode.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..config import ServingConfig
from ..core.coachlm import CoachLM, RevisionOutcome
from ..data.instruction_pair import InstructionPair
from ..errors import AdmissionError, GenerationError, ModelError
from ..nn.decoding import BatchedEngine, SequenceScore
from ..quality.scorer import CriteriaScorer
from ..scoring.ifd import conditioned_request, pair_ifd, unconditioned_request
from .cache import (
    CachedRevision,
    CachedScore,
    RevisionLRUCache,
    revision_key,
    score_key,
)
from .metrics import ServingMetrics
from .queueing import BoundedPriorityQueue
from .requests import (
    KIND_SCORE,
    OUTCOME_EXPIRED,
    OUTCOME_QUALITY_GATED,
    OUTCOME_SCORED,
    RevisionFuture,
    RevisionResult,
    RevisionTask,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    SOURCE_GATE,
)
from .scheduler import EngineJob, StreamingScheduler



class RevisionStream:
    """Consumer handle of one streaming revision.

    The server pushes ordered events into a thread-safe queue as the
    request progresses; the consumer (an HTTP handler, a test) pops them
    with :meth:`get`:

    * ``("tokens", [ids...])`` — tokens produced since the last event;
    * ``("done", RevisionResult)`` — terminal, exactly once, whatever
      path resolved the request (engine, cache, quality gate, expiry);
    * ``("error", exception)`` — terminal, the request failed.

    A preemption of the underlying sequence shows up as a *gap* between
    token events, never as an error — and never changes the tokens.
    :meth:`cancel` (safe from any thread, idempotent) abandons the
    stream: the engine sequence is cancelled and its pages recycle.  No
    terminal event follows a cancel — the consumer is the one leaving.
    """

    def __init__(self, server: "RevisionServer"):
        self._server = server
        self._events: deque = deque()
        self._cond = threading.Condition()
        self._lock = threading.Lock()
        self._seq_id: int | None = None
        self._cancelled = False
        self._terminal = False

    def get(self, timeout: float | None = None):
        """Pop the next event; ``None`` when nothing arrives in time."""
        with self._cond:
            if not self._cond.wait_for(lambda: bool(self._events), timeout):
                return None
            return self._events.popleft()

    def cancel(self) -> None:
        """Abandon the stream (client disconnected); idempotent."""
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            seq_id = self._seq_id
        if seq_id is not None:
            self._server._request_stream_cancel(seq_id)

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    # -- server side -------------------------------------------------------------
    def _push_tokens(self, token_ids: list[int]) -> None:
        # Unlocked flag reads: both only go False->True, and a late
        # extra event is harmless (cancel drains via the server anyway).
        if self._terminal or self._cancelled:
            return
        with self._cond:
            # Coalesce into an undelivered tokens event when the
            # consumer is running behind: each event is "tokens produced
            # since the last one", so merging is semantics-preserving
            # and keeps a slow reader from being woken per decode step.
            # No notify on this branch — a pending event means any
            # waiter was already woken for it.
            if self._events and self._events[-1][0] == "tokens":
                self._events[-1][1].extend(token_ids)
            else:
                self._events.append(("tokens", list(token_ids)))
                self._cond.notify()

    def _push_terminal(self, result) -> None:
        # A RevisionResult or an exception, whichever resolved the future.
        if self._terminal or self._cancelled:
            return
        self._terminal = True
        with self._cond:
            if isinstance(result, BaseException):
                self._events.append(("error", result))
            else:
                self._events.append(("done", result))
            self._cond.notify()

    def _attach(self, seq_id: int) -> bool:
        """Record the engine sequence id; True if already cancelled."""
        with self._lock:
            self._seq_id = seq_id
            return self._cancelled


class RevisionServer:
    """Accepts revision requests asynchronously; serves them via CoachLM.

    The server owns one worker thread that pops the bounded priority
    queue and pumps the streaming scheduler; everything up to the queue
    (cache hits, dedup attachment, admission control) runs on the
    caller's thread and never blocks on the engine.  Use as a context
    manager or call :meth:`start`/:meth:`stop` explicitly; :meth:`stop`
    drains outstanding work before returning.
    """

    def __init__(
        self,
        coach: CoachLM,
        config: ServingConfig | None = None,
        scorer: CriteriaScorer | None = None,
    ):
        if coach.model is None:
            raise ModelError("RevisionServer needs a CoachLM with a model")
        self.coach = coach
        self.config = config or ServingConfig()
        if self.config.quality_gate_threshold is not None and scorer is None:
            scorer = CriteriaScorer()
        self.scorer = scorer
        self.queue: BoundedPriorityQueue[RevisionTask] = BoundedPriorityQueue(
            self.config.max_queue_depth
        )
        self.cache = RevisionLRUCache(self.config.cache_capacity)
        self.metrics = ServingMetrics()
        self.scheduler = StreamingScheduler(
            BatchedEngine(
                coach.model,
                max_batch=self.config.max_batch,
                prefill_chunk_tokens=self.config.prefill_chunk_tokens,
                prefill_concurrency=self.config.prefill_concurrency,
                kv_page_tokens=self.config.kv_page_tokens,
                kv_pool_pages=self.config.kv_pool_pages,
                kv_prefix_cache=self.config.kv_prefix_cache_enabled,
                preemption=self.config.preemption_enabled,
            ),
            self.metrics,
        )
        self._state_lock = threading.Lock()    # guards cache fill + dedup map
        #: Content key → follower tasks attached to the in-flight leader.
        self._inflight: dict[str, list[RevisionTask]] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Mid-stream cancels arrive from HTTP handler threads; the engine
        # is single-driver, so they marshal through this list and the
        # worker drains it between pumps.
        self._cancel_lock = threading.Lock()
        self._stream_cancels: list[int] = []

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "RevisionServer":
        """Start the worker thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self.queue.reopen()
            self._thread = threading.Thread(
                target=self._run, name="revision-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain outstanding work, then stop and join the worker."""
        if self._thread is None:
            return
        self._stop.set()
        self.queue.close()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "RevisionServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- client API --------------------------------------------------------------
    def submit(
        self,
        pair: InstructionPair,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> RevisionFuture:
        """Enqueue one pair for revision; returns a future.

        Raises :class:`AdmissionError` when the queue is full — the
        caller decides whether to retry, shed, or block (see
        :class:`~repro.serving.client.InProcessRevisionClient`).
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        future = RevisionFuture()
        self.metrics.record_submitted()

        # Leakage gating depends on pair identity, not content: keep such
        # pairs away from the content-keyed cache and dedup map.
        key = (
            None
            if self.coach.is_leakage_gated(pair)
            else revision_key(pair, self.coach.max_new_tokens, self.coach.copy_bias)
        )
        task = RevisionTask(
            pair=pair,
            future=future,
            cache_key=key,
            submitted_at=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            priority=priority,
        )
        return self._submit_task(task)

    def submit_score(
        self,
        pair: InstructionPair,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> RevisionFuture:
        """Enqueue one pair for IFD scoring; returns a future.

        Scoring shares the queue, dedup map, result cache and engine
        fleet with revision traffic, but under its own kind-namespaced
        key-space (:func:`score_key`) — a score and a revise of the same
        content never collide.  Leakage gating is irrelevant here
        (scoring reads the pair, it never rewrites it), so every score
        task is content-keyed.  Unscoreable pairs (over-context, empty
        response) resolve with outcome ``prompt_too_long`` and a
        ``None`` score payload.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        self.metrics.record_submitted()
        task = RevisionTask(
            pair=pair,
            future=RevisionFuture(),
            cache_key=score_key(pair) if self.cache.capacity > 0 else None,
            submitted_at=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            priority=priority,
            kind=KIND_SCORE,
        )
        return self._submit_task(task)

    def submit_stream(
        self,
        pair: InstructionPair,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> RevisionStream:
        """Enqueue one pair for revision with incremental token delivery.

        Returns a :class:`RevisionStream` whose events arrive as the
        engine produces tokens — the terminal ``done`` event carries the
        same :class:`RevisionResult` :meth:`submit` would resolve with,
        whichever path produced it (cache hits stream no tokens, just
        ``done``).  Streaming requests skip the in-flight dedup map (a
        follower cannot share a leader's stream) but still read and fill
        the result cache.  Raises :class:`AdmissionError` when the queue
        is full.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        future = RevisionFuture()
        stream = RevisionStream(self)
        future.subscribe(stream._push_terminal)
        self.metrics.record_submitted()
        key = (
            None
            if self.coach.is_leakage_gated(pair)
            else revision_key(pair, self.coach.max_new_tokens, self.coach.copy_bias)
        )
        task = RevisionTask(
            pair=pair,
            future=future,
            cache_key=key,
            submitted_at=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            priority=priority,
            stream=stream,
        )
        if key is not None and self.cache.capacity > 0:
            with self._state_lock:
                entry = self.cache.get(key)
            if entry is not None:
                self._resolve(
                    future, entry.apply(pair), entry.outcome,
                    SOURCE_CACHE, now,
                )
                return stream
        self._enqueue(task)
        return stream

    def _request_stream_cancel(self, seq_id: int) -> None:
        """Marshal a mid-stream cancel onto the worker thread."""
        with self._cancel_lock:
            self._stream_cancels.append(seq_id)

    def _submit_task(self, task: RevisionTask) -> RevisionFuture:
        """Cache / dedup / enqueue one built task (kind-agnostic)."""
        key = task.cache_key
        if key is None or self.cache.capacity <= 0:
            return self._enqueue(task)
        with self._state_lock:
            entry = self.cache.get(key)
            if entry is not None:
                self._resolve(
                    task.future, entry.apply(task.pair), entry.outcome,
                    SOURCE_CACHE, task.submitted_at,
                    score=getattr(entry, "payload", None),
                )
                return task.future
            followers = self._inflight.get(key)
            if followers is not None:
                followers.append(task)
                return task.future
            # New leader: enqueue while still holding the lock, so a
            # rejected put can never leave (or strand followers on) a
            # half-registered in-flight entry.
            self._enqueue(task)
            self._inflight[key] = []
        return task.future

    def _enqueue(self, task: RevisionTask) -> RevisionFuture:
        try:
            self.queue.put(task, task.priority)
        except AdmissionError:
            self.metrics.record_rejected()
            raise
        return task.future

    def revise(
        self, pair: InstructionPair, timeout: float | None = None
    ) -> RevisionResult:
        """Synchronous helper: submit one pair and wait for its result."""
        return self.submit(pair).result(timeout)

    def score(
        self, pair: InstructionPair, timeout: float | None = None
    ) -> RevisionResult:
        """Synchronous helper: submit one scoring request and wait."""
        return self.submit_score(pair).result(timeout)

    # -- observability (the HTTP front-end's service protocol) -------------------
    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: counters + queue depth + engine gauges."""
        return self.metrics.snapshot(
            queue_depth=self.queue.depth, engine=self.scheduler.kv_stats()
        )

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness plus the headroom gauges."""
        engine = self.scheduler.kv_stats()
        return {
            "status": "ok",
            "queue_depth": self.queue.depth,
            "free_slots": engine["free_slots"],
            "free_pages": engine.get("free_pages"),
        }

    # -- worker ------------------------------------------------------------------
    def _run(self) -> None:
        scheduler = self.scheduler
        queue = self.queue
        while True:
            # Mid-stream disconnects: cancel the abandoned sequences so
            # their slots, pages and reservations recycle immediately.
            if self._stream_cancels:
                with self._cancel_lock:
                    cancels, self._stream_cancels = self._stream_cancels, []
                for seq_id in cancels:
                    if scheduler.cancel(seq_id):
                        scheduler.engine.note_stream_disconnect()
            # Starvation guard: a saturating high-priority stream keeps
            # low-priority items from ever reaching the queue head, so
            # deadline misses are swept out of the *whole* queue — they
            # expire (typed, with Retry-After at the HTTP edge) instead
            # of waiting unboundedly.
            if queue.depth:
                now = time.monotonic()
                overdue = queue.sweep(
                    lambda t: t.deadline is not None and now > t.deadline
                )
                for task in overdue:
                    promoted = self._expire_task(task)
                    if promoted is not None:
                        self._admit(promoted)
            # Admit queued tasks only while the engine has room: requests
            # wait under the *priority* discipline, not the engine FIFO.
            # When the fleet is saturated and the queue head outranks an
            # active decode, preempt the lowest-priority one — the
            # interactive request takes its slot now and the bulk
            # sequence resumes later with identical tokens.
            while True:
                if scheduler.free_capacity <= 0:
                    head = queue.peek_priority()
                    if head is None or scheduler.preempt_victim(head) is None:
                        break
                task = queue.get(timeout=0.0)
                if task is None:
                    break
                self._admit(task)
            if scheduler.has_work:
                scheduler.pump()
                continue
            if self._stop.is_set() and queue.depth == 0:
                break
            task = queue.get(timeout=self.config.idle_wait_s)
            if task is not None:
                self._admit(task)

    def _expire_task(self, task: RevisionTask) -> RevisionTask | None:
        """Resolve one deadline-missed task; returns its promoted follower.

        Expiry is per-request: this task alone is resolved as expired and
        its oldest follower (whose own deadline may be laxer) is promoted
        to leader rather than fanning the expiry out to all of them.
        """
        promoted: RevisionTask | None = None
        if task.cache_key is not None:
            with self._state_lock:
                followers = self._inflight.pop(task.cache_key, [])
                if followers:
                    promoted, rest = followers[0], followers[1:]
                    self._inflight[task.cache_key] = rest
        self._resolve(
            task.future, task.pair, OUTCOME_EXPIRED, SOURCE_DEADLINE,
            task.submitted_at,
        )
        return promoted

    def _admit(self, task: RevisionTask) -> None:
        """Gate one dequeued task; hand survivors to the scheduler."""
        while task.deadline is not None and time.monotonic() > task.deadline:
            promoted = self._expire_task(task)
            if promoted is None:
                return
            task = promoted
        if task.kind == KIND_SCORE:
            self._admit_score(task)
            return
        threshold = self.config.quality_gate_threshold
        if threshold is not None and self.scorer is not None:
            report = self.scorer.score_pair(task.pair)
            if report.min_score >= threshold:
                self._finish(
                    task, task.pair, OUTCOME_QUALITY_GATED, SOURCE_GATE,
                    cacheable=True,
                )
                return
        request, outcome = self.coach.prepare_revision(task.pair)
        if request is None:
            assert outcome is not None
            self._finish(
                task, task.pair, outcome.value, SOURCE_ENGINE,
                cacheable=outcome is RevisionOutcome.PROMPT_TOO_LONG,
            )
            return

        def on_done(tokens: list[int], task: RevisionTask = task) -> None:
            revised, out = self.coach.finalize_revision(task.pair, tokens)
            self._finish(
                task, revised, out.value, SOURCE_ENGINE,
                cacheable=True, generated=len(tokens),
            )

        def on_expired(task: RevisionTask = task) -> None:
            # The job missed its deadline inside the engine (queued or
            # mid-flight): same per-request expiry + follower promotion
            # as a queue-side miss, with the promoted follower re-gated.
            promoted = self._expire_task(task)
            if promoted is not None:
                self._admit(promoted)

        stream: RevisionStream | None = task.stream
        if stream is not None and stream.cancelled:
            # The client disconnected while the task was still queued:
            # nobody is left to deliver to, so the engine never sees it.
            self.scheduler.engine.note_stream_disconnect()
            return
        seq_id = self.scheduler.submit(
            EngineJob(
                request, on_done, deadline=task.deadline, on_expired=on_expired,
                priority=task.priority,
                on_token=stream._push_tokens if stream is not None else None,
            )
        )
        if stream is not None and seq_id is not None and stream._attach(seq_id):
            # Cancel raced the submit: the id was unknown to the client-
            # side cancel, so cancel here on the worker thread directly.
            if self.scheduler.cancel(seq_id):
                self.scheduler.engine.note_stream_disconnect()

    def _admit_score(self, task: RevisionTask) -> None:
        """Hand one scoring task to the scheduler as two engine jobs.

        IFD needs two teacher-forced passes (response NLL conditioned and
        unconditioned on the instruction); each becomes its own
        :class:`EngineJob` so they batch and schedule like any other
        engine work.  The combiner closure runs on the single worker
        thread (scheduler callbacks are dispatched there), so the
        ``resolved`` latch dict needs no lock; expiry of either job
        resolves the task exactly once via its own latch.
        """
        cond = conditioned_request(self.coach.tokenizer, task.pair)
        uncond = unconditioned_request(self.coach.tokenizer, task.pair)
        resolved: dict[str, SequenceScore] = {}

        def combine(which: str, score: SequenceScore) -> None:
            resolved[which] = score
            if len(resolved) == 2:
                verdict = pair_ifd(resolved["cond"], resolved["uncond"])
                self._finish(
                    task, task.pair, OUTCOME_SCORED, SOURCE_ENGINE,
                    cacheable=True, score=verdict.as_dict(),
                )

        expired = {"fired": False}

        def on_expired(task: RevisionTask = task) -> None:
            # Both engine jobs carry this callback; the first expiry wins
            # and the second (its job already terminal) is a no-op here.
            if expired["fired"]:
                return
            expired["fired"] = True
            promoted = self._expire_task(task)
            if promoted is not None:
                self._admit(promoted)

        try:
            # The conditioned prompt strictly contains the unconditioned
            # one, so validating/submitting it first means a too-long
            # pair enqueues nothing.
            self.scheduler.submit(EngineJob(
                cond, lambda s: combine("cond", s),
                deadline=task.deadline, on_expired=on_expired,
                priority=task.priority,
            ))
            self.scheduler.submit(EngineJob(
                uncond, lambda s: combine("uncond", s),
                deadline=task.deadline, on_expired=on_expired,
                priority=task.priority,
            ))
        except GenerationError:
            self._finish(
                task, task.pair, RevisionOutcome.PROMPT_TOO_LONG.value,
                SOURCE_ENGINE, cacheable=True,
            )

    def _finish(
        self,
        task: RevisionTask,
        result_pair: InstructionPair,
        outcome: str,
        source: str,
        cacheable: bool,
        generated: int = 0,
        score: dict | None = None,
    ) -> None:
        """Resolve a task terminally: cache, fan out to followers, notify."""
        entry: CachedRevision | CachedScore
        if task.kind == KIND_SCORE:
            entry = CachedScore(score, outcome)
        else:
            entry = CachedRevision(
                result_pair.instruction, result_pair.response, outcome
            )
        followers: list[RevisionTask] = []
        if task.cache_key is not None:
            with self._state_lock:
                if cacheable:
                    self.cache.put(task.cache_key, entry)
                followers = self._inflight.pop(task.cache_key, [])
        self._resolve(
            task.future, result_pair, outcome, source, task.submitted_at,
            generated, score,
        )
        for follower in followers:
            self._resolve(
                follower.future, entry.apply(follower.pair), outcome,
                SOURCE_DEDUP, follower.submitted_at, score=score,
            )

    def _resolve(
        self,
        future: RevisionFuture,
        pair: InstructionPair,
        outcome: str,
        source: str,
        submitted_at: float,
        generated: int = 0,
        score: dict | None = None,
    ) -> None:
        result = RevisionResult(
            pair=pair,
            outcome=outcome,
            source=source,
            latency_s=time.monotonic() - submitted_at,
            generated_tokens=generated,
            score=score,
        )
        self.metrics.record_result(result)
        future.set_result(result)
