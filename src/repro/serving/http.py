"""Stdlib JSON/HTTP front-end for the revision server.

A thin :class:`ThreadingHTTPServer` adapter — each connection is handled
on its own thread, submits into the shared :class:`RevisionServer` and
blocks on its future, so concurrency is bounded by the serving queue and
engine, not by HTTP.  Endpoints:

``POST /revise``
    Body ``{"instruction": str, "response": str, "pair_id"?, "priority"?,
    "deadline_s"?, "timeout_s"?}``.  Replies ``200`` with
    ``{"instruction", "response", "outcome", "source", "latency_s",
    "generated_tokens"}``; ``400`` on a malformed payload; ``413`` when
    the body exceeds ``max_body_bytes``; ``429`` with a ``Retry-After``
    header when admission control rejects; ``504`` when the result
    misses ``timeout_s``.
``GET /metrics``
    The :meth:`ServingMetrics.snapshot` JSON (latency percentiles,
    tokens/sec, per-source counts, queue depth) plus an ``engine``
    section with fleet occupancy and the KV pool's ``free_pages``
    headroom — the admission-pressure gauges that move before the
    bounded queue starts answering 429.
``GET /healthz``
    ``{"status": "ok", "queue_depth": n, "free_slots": n,
    "free_pages": n | null}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..data.instruction_pair import InstructionPair
from ..errors import AdmissionError, ServingError
from .server import RevisionServer


def _make_handler(
    revision_server: RevisionServer,
    default_timeout_s: float,
    max_body_bytes: int,
) -> type[BaseHTTPRequestHandler]:
    class RevisionHandler(BaseHTTPRequestHandler):
        server_version = "CoachLMRevision/1.0"

        def log_message(self, *args: object) -> None:  # silence stderr
            pass

        def _reply(
            self,
            status: int,
            payload: dict,
            headers: dict[str, str] | None = None,
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/metrics":
                # Queue depth + the engine's free-page/free-slot headroom:
                # the gauges that show admission pressure building before
                # submit() starts answering 429.
                self._reply(
                    200,
                    revision_server.metrics.snapshot(
                        queue_depth=revision_server.queue.depth,
                        engine=revision_server.scheduler.kv_stats(),
                    ),
                )
            elif self.path == "/healthz":
                engine = revision_server.scheduler.kv_stats()
                self._reply(
                    200,
                    {
                        "status": "ok",
                        "queue_depth": revision_server.queue.depth,
                        "free_slots": engine["free_slots"],
                        "free_pages": engine.get("free_pages"),
                    },
                )
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:
            if self.path != "/revise":
                self._reply(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._reply(400, {"error": "malformed Content-Length"})
                return
            if length < 0:
                # A negative length would turn rfile.read into a
                # read-to-EOF that blocks the handler thread forever.
                self._reply(400, {"error": "malformed Content-Length"})
                return
            if length > max_body_bytes:
                # Reject before reading: an oversized body never buffers.
                self._reply(
                    413,
                    {
                        "error": (
                            f"payload of {length} bytes exceeds the "
                            f"{max_body_bytes}-byte limit"
                        )
                    },
                )
                return
            try:
                blob = json.loads(self.rfile.read(length) or b"")
            except (ValueError, json.JSONDecodeError):
                self._reply(400, {"error": "body must be a JSON object"})
                return
            if (
                not isinstance(blob, dict)
                or not isinstance(blob.get("instruction"), str)
                or not isinstance(blob.get("response"), str)
            ):
                self._reply(
                    400,
                    {"error": "required string fields: instruction, response"},
                )
                return
            pair = InstructionPair(
                instruction=blob["instruction"],
                response=blob["response"],
                pair_id=str(blob.get("pair_id", "")),
            )
            try:
                priority = int(blob.get("priority", 0))
                deadline_s = blob.get("deadline_s")
                deadline_s = None if deadline_s is None else float(deadline_s)
                timeout_s = float(blob.get("timeout_s", default_timeout_s))
            except (TypeError, ValueError):
                self._reply(400, {"error": "malformed numeric field"})
                return
            try:
                future = revision_server.submit(
                    pair, priority=priority, deadline_s=deadline_s
                )
            except AdmissionError as error:
                # Back-pressure: tell well-behaved clients when to retry
                # (one engine drain of the queue is a reasonable horizon).
                self._reply(
                    429, {"error": str(error)}, headers={"Retry-After": "1"}
                )
                return
            try:
                result = future.result(timeout=timeout_s)
            except ServingError as error:
                self._reply(504, {"error": str(error)})
                return
            self._reply(200, {
                "instruction": result.pair.instruction,
                "response": result.pair.response,
                "outcome": result.outcome,
                "source": result.source,
                "latency_s": round(result.latency_s, 6),
                "generated_tokens": result.generated_tokens,
            })

    return RevisionHandler


class RevisionHTTPFrontend:
    """Owns a :class:`ThreadingHTTPServer` bound to one revision server.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  Starting the front-end also starts the underlying
    revision server.  ``max_body_bytes`` bounds the ``POST /revise``
    payload (``413`` beyond it, rejected before the body is read).  Use
    as a context manager or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        revision_server: RevisionServer,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 60.0,
        max_body_bytes: int = 1 << 20,
    ):
        self.revision_server = revision_server
        self.httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(revision_server, request_timeout_s, max_body_bytes),
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "RevisionHTTPFrontend":
        if self._thread is None:
            self.revision_server.start()
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="revision-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join()
        self._thread = None
        self.revision_server.stop()

    def __enter__(self) -> "RevisionHTTPFrontend":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
