"""Stdlib JSON/HTTP front-end for the revision service.

A thin :class:`ThreadingHTTPServer` adapter — each connection is handled
on its own thread, submits into the shared service and blocks on its
future, so concurrency is bounded by the serving queue and engine, not
by HTTP.  The service may be a single-process
:class:`~repro.serving.server.RevisionServer` or a multi-process
:class:`~repro.serving.fleet.EngineFleet`; both expose the same
``submit`` / ``metrics_snapshot`` / ``health`` protocol.  Endpoints:

``POST /revise``
    Body ``{"instruction": str, "response": str, "pair_id"?, "priority"?,
    "deadline_s"?, "timeout_s"?}``.  Replies ``200`` with
    ``{"instruction", "response", "outcome", "source", "latency_s",
    "generated_tokens"}``; ``400`` on a malformed payload; ``408`` when
    the client announces a body and then stalls sending it for more than
    ``handler_timeout_s`` (the connection is closed after); ``413`` when
    the body exceeds ``max_body_bytes``; ``429`` with a ``Retry-After``
    header when admission control rejects; ``503`` with ``Retry-After``
    when the request was shed (overload, degraded fleet, or drain mode);
    ``504`` when the result misses ``timeout_s``, or — with
    ``Retry-After`` — when the request's own ``deadline_s`` expired in
    the queue (the starvation guard under a saturating higher-priority
    stream).  With ``"stream":
    true`` the reply is instead an EOF-delimited ``text/event-stream``
    of ``data: {json}`` events — ``tokens`` deltas as the engine
    produces them, then one terminal ``done``/``error`` (see
    ``docs/streaming.md``); ``501`` when the service cannot stream
    (the multi-process fleet).
``POST /score``
    Same request body and error semantics; the pair is teacher-force
    scored instead of revised (IFD — see ``docs/scoring.md``).  Replies
    ``200`` with ``{"conditioned_nll", "unconditioned_nll", "ifd",
    "response_perplexity", "n_tokens", "outcome", "source",
    "latency_s"}``; the numeric fields are ``null`` when the pair was
    unscoreable (outcome ``prompt_too_long``).
``GET /metrics``
    The :meth:`ServingMetrics.snapshot` JSON (latency percentiles,
    tokens/sec, per-source counts, queue depth) plus an ``engine``
    section with occupancy and the KV pool's ``free_pages`` headroom —
    the admission-pressure gauges that move before the bounded queue
    starts answering 429.
``GET /healthz``
    The service's :meth:`health` payload (``status`` is ``"draining"``
    while the front-end refuses new work).

**Graceful drain**: :meth:`RevisionHTTPFrontend.drain` flips the
front-end into drain mode — new ``POST /revise`` requests are refused
with ``503`` + ``Retry-After`` while the requests already being handled
run to completion — and returns once the last in-flight request has
been answered.  Monitoring endpooints keep answering throughout, so
orchestrators watch the drain finish before SIGTERM turns into SIGKILL.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..data.instruction_pair import InstructionPair
from ..errors import AdmissionError, OverloadError, ServingError
from .requests import OUTCOME_EXPIRED, SOURCE_SHED


def _make_handler(
    frontend: "RevisionHTTPFrontend",
    default_timeout_s: float,
    max_body_bytes: int,
    handler_timeout_s: float,
) -> type[BaseHTTPRequestHandler]:
    service = frontend.service

    class RevisionHandler(BaseHTTPRequestHandler):
        server_version = "CoachLMRevision/1.0"
        #: Socket timeout for every read on the connection — a slow-loris
        #: client (bytes trickling in, or none at all) cannot pin a
        #: handler thread forever.  ``socketserver`` applies this via
        #: ``connection.settimeout`` in ``setup()``.
        timeout = handler_timeout_s

        def log_message(self, *args: object) -> None:  # silence stderr
            pass

        def handle(self) -> None:
            # A peer that vanished (RST mid-request) or stalled past the
            # socket timeout is routine network weather, not a handler
            # crash: drop the connection without a traceback.
            try:
                super().handle()
            except (ConnectionError, TimeoutError):
                self.close_connection = True

        def _reply(
            self,
            status: int,
            payload: dict,
            headers: dict[str, str] | None = None,
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)
            except (ConnectionError, BrokenPipeError, TimeoutError):
                # The client disconnected mid-reply.  The work is done
                # and cached server-side; a retry will find it there.
                self.close_connection = True

        def do_GET(self) -> None:
            if self.path == "/metrics":
                # Queue depth + the engine's free-page/free-slot headroom:
                # the gauges that show admission pressure building before
                # submit() starts answering 429.
                self._reply(200, service.metrics_snapshot())
            elif self.path == "/healthz":
                health = service.health()
                if frontend.draining:
                    health["status"] = "draining"
                self._reply(200, health)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:
            if self.path not in ("/revise", "/score"):
                self._reply(404, {"error": f"unknown path {self.path!r}"})
                return
            if frontend.draining:
                # Refuse before reading the body: a draining front-end
                # spends no work on requests it will not serve.
                self._reply(
                    503,
                    {"error": "service is draining"},
                    headers={"Retry-After": frontend.retry_after_header},
                )
                return
            if not frontend.track_request():
                self._reply(
                    503,
                    {"error": "service is draining"},
                    headers={"Retry-After": frontend.retry_after_header},
                )
                return
            try:
                self._handle_submit(scoring=self.path == "/score")
            finally:
                frontend.untrack_request()

        def _handle_submit(self, scoring: bool) -> None:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._reply(400, {"error": "malformed Content-Length"})
                return
            if length < 0:
                # A negative length would turn rfile.read into a
                # read-to-EOF that blocks the handler thread forever.
                self._reply(400, {"error": "malformed Content-Length"})
                return
            if length > max_body_bytes:
                # Reject before reading: an oversized body never buffers.
                self._reply(
                    413,
                    {
                        "error": (
                            f"payload of {length} bytes exceeds the "
                            f"{max_body_bytes}-byte limit"
                        )
                    },
                )
                return
            try:
                raw = self.rfile.read(length)
            except TimeoutError:
                # The client announced a body and then stalled sending
                # it: answer 408 and close rather than pinning the
                # handler thread on a half-sent request.
                self._reply(
                    408,
                    {
                        "error": (
                            "request body stalled for more than "
                            f"{handler_timeout_s}s"
                        )
                    },
                )
                self.close_connection = True
                return
            try:
                blob = json.loads(raw or b"")
            except (ValueError, json.JSONDecodeError):
                self._reply(400, {"error": "body must be a JSON object"})
                return
            if (
                not isinstance(blob, dict)
                or not isinstance(blob.get("instruction"), str)
                or not isinstance(blob.get("response"), str)
            ):
                self._reply(
                    400,
                    {"error": "required string fields: instruction, response"},
                )
                return
            pair = InstructionPair(
                instruction=blob["instruction"],
                response=blob["response"],
                pair_id=str(blob.get("pair_id", "")),
            )
            try:
                priority = int(blob.get("priority", 0))
                deadline_s = blob.get("deadline_s")
                deadline_s = None if deadline_s is None else float(deadline_s)
                timeout_s = float(blob.get("timeout_s", default_timeout_s))
            except (TypeError, ValueError):
                self._reply(400, {"error": "malformed numeric field"})
                return
            if not scoring and bool(blob.get("stream")):
                self._handle_stream(pair, priority, deadline_s, timeout_s)
                return
            try:
                if scoring:
                    future = service.submit_score(
                        pair, priority=priority, deadline_s=deadline_s
                    )
                else:
                    future = service.submit(
                        pair, priority=priority, deadline_s=deadline_s
                    )
            except OverloadError as error:
                # Shed, not merely queued-out: the service chose to drop
                # load (drain, degraded fleet, or a lost priority fight).
                self._reply(
                    503,
                    {"error": str(error)},
                    headers={
                        "Retry-After": _retry_after(error.retry_after_s)
                    },
                )
                return
            except AdmissionError as error:
                # Back-pressure: tell well-behaved clients when to retry
                # (one engine drain of the queue is a reasonable horizon).
                self._reply(
                    429, {"error": str(error)}, headers={"Retry-After": "1"}
                )
                return
            try:
                result = future.result(timeout=timeout_s)
            except ServingError as error:
                self._reply(504, {"error": str(error)})
                return
            if result.source == SOURCE_SHED:
                # Accepted but displaced by a higher-priority request
                # while queued: to the HTTP client that is an overload.
                self._reply(
                    503,
                    {"error": "request was shed under load"},
                    headers={"Retry-After": frontend.retry_after_header},
                )
                return
            if result.outcome == OUTCOME_EXPIRED:
                # The starvation guard fired: a saturating higher-priority
                # stream held this request off the queue head until its
                # deadline.  Typed, with a retry hint — never an
                # unbounded wait.
                self._reply(
                    504,
                    {"error": "deadline expired before decoding"},
                    headers={"Retry-After": frontend.retry_after_header},
                )
                return
            if scoring:
                score = result.score or {}
                self._reply(200, {
                    "conditioned_nll": score.get("conditioned_nll"),
                    "unconditioned_nll": score.get("unconditioned_nll"),
                    "ifd": score.get("ifd"),
                    "response_perplexity": score.get("response_perplexity"),
                    "n_tokens": score.get("n_tokens"),
                    "outcome": result.outcome,
                    "source": result.source,
                    "latency_s": round(result.latency_s, 6),
                })
                return
            self._reply(200, {
                "instruction": result.pair.instruction,
                "response": result.pair.response,
                "outcome": result.outcome,
                "source": result.source,
                "latency_s": round(result.latency_s, 6),
                "generated_tokens": result.generated_tokens,
            })

        def _handle_stream(
            self,
            pair: InstructionPair,
            priority: int,
            deadline_s: float | None,
            timeout_s: float,
        ) -> None:
            """``POST /revise`` with ``"stream": true``: SSE token events.

            The reply carries no ``Content-Length`` and closes the
            connection at the end (EOF-delimited), so tokens flush to
            the client as the engine produces them.  Events are
            ``data: {json}\\n\\n`` lines: ``tokens`` (incremental ids),
            then exactly one of ``done`` (the full result — a
            preemption shows up only as a gap between token events) or
            ``error``.  A client that disconnects mid-stream cancels
            the engine sequence: its pages recycle and only this
            handler thread is spent.
            """
            if not hasattr(service, "submit_stream"):
                self._reply(
                    501,
                    {"error": "streaming is not supported by this service"},
                )
                return
            try:
                stream = service.submit_stream(
                    pair, priority=priority, deadline_s=deadline_s
                )
            except OverloadError as error:
                self._reply(
                    503,
                    {"error": str(error)},
                    headers={"Retry-After": _retry_after(error.retry_after_s)},
                )
                return
            except AdmissionError as error:
                self._reply(
                    429, {"error": str(error)}, headers={"Retry-After": "1"}
                )
                return
            try:
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-store")
                self.send_header("Connection", "close")
                self.end_headers()
            except (ConnectionError, BrokenPipeError, TimeoutError):
                stream.cancel()
                self.close_connection = True
                return
            deadline = time.monotonic() + timeout_s
            while True:
                remaining = deadline - time.monotonic()
                event = stream.get(timeout=max(remaining, 0.0))
                if event is None:
                    stream.cancel()
                    self._stream_event({
                        "event": "error",
                        "error": f"no result within {timeout_s}s",
                    })
                    self.close_connection = True
                    return
                if event[0] == "tokens":
                    ok = self._stream_event(
                        {"event": "tokens", "token_ids": event[1]}
                    )
                elif event[0] == "done":
                    result = event[1]
                    self._stream_event({
                        "event": "done",
                        "instruction": result.pair.instruction,
                        "response": result.pair.response,
                        "outcome": result.outcome,
                        "source": result.source,
                        "latency_s": round(result.latency_s, 6),
                        "generated_tokens": result.generated_tokens,
                    })
                    self.close_connection = True
                    return
                else:
                    self._stream_event(
                        {"event": "error", "error": str(event[1])}
                    )
                    self.close_connection = True
                    return
                if not ok:
                    # Mid-stream disconnect: the peer is gone, so the
                    # sequence is cancelled and its pages recycle.
                    stream.cancel()
                    self.close_connection = True
                    return

        def _stream_event(self, payload: dict) -> bool:
            """Write one SSE event; False when the peer has vanished."""
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            try:
                self.wfile.write(b"data: " + data + b"\n\n")
                self.wfile.flush()
                return True
            except (ConnectionError, BrokenPipeError, TimeoutError, OSError):
                return False

    return RevisionHandler


def _retry_after(seconds: float) -> str:
    """Retry-After is an integer header; round up so 0.5s never becomes
    an immediate (0-second) retry stampede."""
    return str(max(1, int(seconds + 0.999)))


class RevisionHTTPFrontend:
    """Owns a :class:`ThreadingHTTPServer` bound to one revision service.

    ``service`` is anything implementing the revision-service protocol
    (``submit``/``start``/``stop``/``metrics_snapshot``/``health``) — a
    :class:`RevisionServer` or an :class:`EngineFleet`.  ``port=0``
    binds an ephemeral port; read :attr:`address` after construction.
    Starting the front-end also starts the underlying service.
    ``max_body_bytes`` bounds the ``POST /revise`` payload (``413``
    beyond it, rejected before the body is read).  ``handler_timeout_s``
    is the per-connection socket timeout: a client that stalls
    mid-request gets ``408`` (announced body never arrived) or a closed
    connection (headers never arrived) instead of a pinned handler
    thread.  Use as a context manager or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 60.0,
        max_body_bytes: int = 1 << 20,
        drain_retry_after_s: float = 1.0,
        handler_timeout_s: float = 30.0,
    ):
        self.service = service
        self.draining = False
        self.drain_retry_after_s = drain_retry_after_s
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(
                self, request_timeout_s, max_body_bytes, handler_timeout_s
            ),
        )
        self._thread: threading.Thread | None = None

    @property
    def revision_server(self):
        """Backwards-compatible alias for :attr:`service`."""
        return self.service

    @property
    def retry_after_header(self) -> str:
        return _retry_after(self.drain_retry_after_s)

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def inflight_requests(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def track_request(self) -> bool:
        """Count one ``POST /revise`` as in flight; False once draining."""
        with self._inflight_lock:
            if self.draining:
                return False
            self._inflight += 1
            return True

    def untrack_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def drain(self, timeout_s: float = 60.0) -> bool:
        """Enter drain mode and wait for in-flight requests to complete.

        New ``POST /revise`` requests are answered ``503`` +
        ``Retry-After`` from the moment this is called; monitoring GETs
        keep working.  Returns True once the last in-flight request has
        been answered (False if ``timeout_s`` elapsed first — the
        caller decides whether to hard-stop anyway).
        """
        with self._inflight_lock:
            self.draining = True
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.inflight_requests == 0:
                return True
            time.sleep(0.005)
        return self.inflight_requests == 0

    def start(self) -> "RevisionHTTPFrontend":
        if self._thread is None:
            self.draining = False
            self.service.start()
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="revision-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join()
        self._thread = None
        self.service.stop()

    def __enter__(self) -> "RevisionHTTPFrontend":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
