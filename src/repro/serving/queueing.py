"""Bounded priority queue with admission control.

The serving layer never buffers unboundedly: when the queue is full,
:meth:`BoundedPriorityQueue.put` raises
:class:`~repro.errors.AdmissionError` so back-pressure propagates to the
caller (the HTTP front-end turns it into ``429 Too Many Requests``).
Lower priority values are served first; requests within one priority
class stay FIFO.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Generic, TypeVar

from ..errors import AdmissionError, ConfigError, ServingError

T = TypeVar("T")


class BoundedPriorityQueue(Generic[T]):
    """Thread-safe bounded priority queue (lower value = higher priority)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, T]] = []
        self._tiebreak = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def depth(self) -> int:
        """Current number of queued items."""
        return len(self)

    def put(self, item: T, priority: int = 0) -> None:
        """Enqueue ``item``; raises :class:`AdmissionError` when full."""
        with self._not_empty:
            if self._closed:
                raise ServingError("queue is closed")
            if len(self._heap) >= self.capacity:
                raise AdmissionError(
                    f"queue full: depth {len(self._heap)} >= capacity "
                    f"{self.capacity}"
                )
            heapq.heappush(self._heap, (priority, next(self._tiebreak), item))
            self._not_empty.notify()

    def put_or_displace(self, item: T, priority: int = 0) -> T | None:
        """Enqueue ``item``, shedding the worst queued item if necessary.

        The load-shedding admission discipline of the serving fleet:
        when the queue is full, the *lowest-priority* queued item (ties
        broken against the newest arrival) is evicted to make room —
        but only if ``item`` strictly outranks it.  Returns the
        displaced item for the caller to resolve as shed, ``None`` when
        no displacement was needed, and raises :class:`AdmissionError`
        when ``item`` itself is the worst candidate (the caller sheds
        the new request instead).
        """
        with self._not_empty:
            if self._closed:
                raise ServingError("queue is closed")
            if len(self._heap) < self.capacity:
                heapq.heappush(
                    self._heap, (priority, next(self._tiebreak), item)
                )
                self._not_empty.notify()
                return None
            worst_index = max(
                range(len(self._heap)), key=lambda i: self._heap[i][:2]
            )
            if self._heap[worst_index][0] <= priority:
                raise AdmissionError(
                    f"queue full: depth {len(self._heap)} >= capacity "
                    f"{self.capacity} and no lower-priority item to shed"
                )
            displaced = self._heap[worst_index][2]
            self._heap[worst_index] = self._heap[-1]
            self._heap.pop()
            heapq.heapify(self._heap)
            heapq.heappush(self._heap, (priority, next(self._tiebreak), item))
            self._not_empty.notify()
            return displaced

    def peek_priority(self) -> int | None:
        """Priority of the item :meth:`get` would pop next (``None`` if empty).

        The server's preemption probe: when the engine has no free
        capacity, the head priority decides whether an active decode
        should be evicted to admit the queue head.
        """
        with self._lock:
            return self._heap[0][0] if self._heap else None

    def sweep(self, predicate) -> list[T]:
        """Remove and return every queued item matching ``predicate``.

        The starvation guard: a saturating high-priority stream can
        keep a low-priority item from ever reaching the head, so the
        server periodically sweeps items whose deadline has passed and
        resolves them as expired (typed, with Retry-After) instead of
        letting them wait unboundedly.  Order among survivors is
        preserved; the heap is rebuilt once.
        """
        with self._lock:
            matched: list[tuple[int, int, T]] = []
            kept: list[tuple[int, int, T]] = []
            for entry in self._heap:
                (matched if predicate(entry[2]) else kept).append(entry)
            if matched:
                self._heap = kept
                heapq.heapify(self._heap)
            return [entry[2] for entry in matched]

    def get(self, timeout: float | None = None) -> T | None:
        """Pop the highest-priority item; ``None`` on timeout or drained-closed."""
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Refuse new puts and wake blocked getters; queued items still drain."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def reopen(self) -> None:
        """Accept puts again (a restarted server reuses its queue)."""
        with self._not_empty:
            self._closed = False
