"""Request records, results and futures of the online revision service.

A client submits one :class:`~repro.data.instruction_pair.InstructionPair`
and immediately receives a :class:`RevisionFuture`; the serving worker
resolves it with a :class:`RevisionResult` once the request reaches a
terminal state.  All timestamps use :func:`time.monotonic` so latencies
survive wall-clock adjustments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..data.instruction_pair import InstructionPair
from ..errors import ServingError

#: ``RevisionResult.source`` values — which path produced the result.
SOURCE_ENGINE = "engine"            #: decoded by the batched engine
SOURCE_CACHE = "cache"              #: LRU hit, engine untouched
SOURCE_DEDUP = "dedup"              #: attached to an identical in-flight request
SOURCE_GATE = "quality_gate"        #: skipped: already above the rubric threshold
SOURCE_DEADLINE = "deadline"        #: expired in the queue before decoding
SOURCE_SHED = "shed"                #: displaced from a full queue under pressure
SOURCE_JOURNAL = "journal"          #: replayed from a crash-safe run journal

#: Serving-only terminal outcomes (alongside ``RevisionOutcome`` values).
OUTCOME_EXPIRED = "expired"
OUTCOME_QUALITY_GATED = "quality_gated"
OUTCOME_SHED = "shed"
OUTCOME_SCORED = "scored"   #: a scoring request completed its two passes

#: ``RevisionTask.kind`` values — which computation the task asks for.
KIND_REVISE = "revise"
KIND_SCORE = "score"


@dataclass(frozen=True)
class RevisionResult:
    """Terminal state of one revision or scoring request."""

    pair: InstructionPair   #: the revised pair (or the original on fallback)
    outcome: str            #: a ``RevisionOutcome`` value, or a serving outcome
    source: str             #: one of the ``SOURCE_*`` constants
    latency_s: float        #: submit → resolve, monotonic clock
    generated_tokens: int = 0   #: decode tokens spent on this request
    score: dict | None = None   #: ``PairIFD.as_dict()`` payload for score tasks


class RevisionFuture:
    """Write-once future resolved by the serving worker.

    Resolution is terminal and exclusive: exactly one of
    :meth:`set_result` / :meth:`set_exception` may land, once — a second
    resolution attempt raises.  A future resolved with an exception
    (e.g. :class:`~repro.errors.WorkerLostError` after a fleet worker's
    retry budget is spent) re-raises it from :meth:`result`.
    """

    __slots__ = ("_event", "_result", "_exception", "_subscribers")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: RevisionResult | None = None
        self._exception: BaseException | None = None
        self._subscribers: list = []

    def done(self) -> bool:
        return self._event.is_set()

    def subscribe(self, callback) -> None:
        """Invoke ``callback`` with the result when (or if already) resolved.

        The streaming hook: a :class:`RevisionStream` subscribes so that
        *every* terminal path — engine completion, cache hit, quality
        gate, deadline expiry, load shed — emits its ``done`` event
        without each path knowing about streams.  Exception resolutions
        invoke the callback with the exception instead.  Callbacks run
        on whichever thread resolves the future.
        """
        if self._event.is_set():
            callback(
                self._exception if self._exception is not None else self._result
            )
        else:
            self._subscribers.append(callback)

    def set_result(self, result: RevisionResult) -> None:
        if self._event.is_set():
            raise ServingError("revision future already resolved")
        self._result = result
        self._event.set()
        for callback in self._subscribers:
            callback(result)
        self._subscribers = []

    def set_exception(self, exception: BaseException) -> None:
        if self._event.is_set():
            raise ServingError("revision future already resolved")
        self._exception = exception
        self._event.set()
        for callback in self._subscribers:
            callback(exception)
        self._subscribers = []

    def exception(self) -> BaseException | None:
        """The resolving exception, or ``None`` (unresolved / has result)."""
        return self._exception

    def result(self, timeout: float | None = None) -> RevisionResult:
        """Block until resolved; raises :class:`ServingError` on timeout.

        Re-raises the resolving exception when the request terminated
        with one instead of a result.
        """
        if not self._event.wait(timeout):
            raise ServingError(
                f"timed out after {timeout}s waiting for a revision result"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result


@dataclass
class RevisionTask:
    """One queued revision or scoring request (internal to the server)."""

    pair: InstructionPair
    future: RevisionFuture
    cache_key: str | None       #: None for leakage-gated pairs (id-dependent)
    submitted_at: float         #: monotonic
    deadline: float | None      #: monotonic, absolute; None = never expires
    priority: int = 0
    requeues: int = 0           #: times re-dispatched after losing a fleet worker
    kind: str = KIND_REVISE     #: ``KIND_REVISE`` or ``KIND_SCORE``
    stream: object | None = None    #: RevisionStream for incremental delivery
