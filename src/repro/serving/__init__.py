"""Online revision service: CoachLM as a streaming precursor stage.

The paper's headline industrial result is CoachLM running *online*
inside Huawei's LLM data-management platform, revising noisy user cases
before human annotators see them (Fig. 6).  The offline reproduction
(:mod:`repro.deployment.platform`) processes fully-materialised batches;
this package serves requests that **arrive over time**, which is what
the platform actually faces under heavy user traffic.

Architecture (bottom up):

* :mod:`repro.serving.scheduler` — :class:`StreamingScheduler`: feeds
  jobs into the :class:`~repro.nn.decoding.BatchedEngine` incrementally
  via its ``submit``/``step``/``collect`` API, so a late-arriving request
  joins the in-flight batch at the first retired KV slot instead of
  waiting for the batch to drain;
* :mod:`repro.serving.queueing` — :class:`BoundedPriorityQueue` with
  admission control (:class:`~repro.errors.AdmissionError` on overflow);
* :mod:`repro.serving.cache` — content-hash dedup plus an LRU result
  cache, keyed by :func:`repro.pipeline.cache.config_hash`; repeated
  content is served without touching the engine;
* :mod:`repro.serving.metrics` — queue depth, latency percentiles and
  sustained tokens/sec, all on monotonic clocks;
* :mod:`repro.serving.server` — :class:`RevisionServer`: per-request
  futures, deadlines, optional :class:`~repro.quality.scorer.CriteriaScorer`
  quality gating, one worker thread pumping the scheduler;
* :mod:`repro.serving.client` — :class:`InProcessRevisionClient`: the
  ``CoachLM.revise_dataset``-compatible façade used by the Fig. 6
  platform simulator;
* :mod:`repro.serving.http` — a stdlib ``ThreadingHTTPServer`` JSON
  front-end (``POST /revise``, ``POST /score``, ``GET /metrics``,
  ``GET /healthz``);
* :mod:`repro.serving.httpclient` — :class:`RevisionHTTPClient`: the
  retrying network client (timeouts, jittered backoff, ``Retry-After``,
  typed give-up), made effectively exactly-once by the server's dedup
  cache;
* :mod:`repro.serving.journal` — :class:`RunJournal`: a crash-safe,
  fsync'd write-ahead journal that makes whole revision runs resumable
  with byte-identical output (``docs/resilience.md``);
* :mod:`repro.serving.faults` — seeded fault injection for both the
  process layer (:class:`FaultPlan`) and the network layer
  (:class:`NetworkFaultPlan` + :class:`FaultyProxy`).

Besides revisions the service carries teacher-forced **scoring** traffic
(``submit_score`` / ``POST /score``): IFD verdicts from
:mod:`repro.scoring`, sharing the scheduler, queue and fleet with
revise jobs under a kind-namespaced dedup key-space (see
:func:`~repro.serving.cache.score_key`).

Served revisions are token-for-token identical to
:meth:`CoachLM.revise_dataset` on the same inputs; the parity is pinned
by ``tests/test_serving.py`` and throughput is tracked by
``benchmarks/test_bench_serving.py`` (``BENCH_serving.json``).
"""

from .cache import (
    CachedRevision,
    CachedScore,
    RevisionLRUCache,
    revision_key,
    score_key,
)
from .client import InProcessRevisionClient
from .faults import (
    ConnectionFault,
    FaultInjector,
    FaultPlan,
    FaultyProxy,
    NetworkFaultPlan,
    WorkerFaults,
)
from .fleet import EngineFleet
from .http import RevisionHTTPFrontend
from .httpclient import RevisionHTTPClient
from .journal import (
    JournaledDone,
    JournalReplay,
    RunJournal,
    dataset_fingerprint,
)
from .metrics import ServingMetrics
from .queueing import BoundedPriorityQueue
from .requests import (
    KIND_REVISE,
    KIND_SCORE,
    OUTCOME_EXPIRED,
    OUTCOME_QUALITY_GATED,
    OUTCOME_SCORED,
    OUTCOME_SHED,
    RevisionFuture,
    RevisionResult,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    SOURCE_GATE,
    SOURCE_JOURNAL,
    SOURCE_SHED,
)
from .scheduler import EngineJob, StreamingScheduler
from .server import RevisionServer, RevisionStream

__all__ = [
    "BoundedPriorityQueue",
    "CachedRevision",
    "CachedScore",
    "ConnectionFault",
    "EngineFleet",
    "EngineJob",
    "FaultInjector",
    "FaultPlan",
    "FaultyProxy",
    "InProcessRevisionClient",
    "JournaledDone",
    "JournalReplay",
    "KIND_REVISE",
    "KIND_SCORE",
    "NetworkFaultPlan",
    "OUTCOME_EXPIRED",
    "OUTCOME_QUALITY_GATED",
    "OUTCOME_SCORED",
    "OUTCOME_SHED",
    "RevisionFuture",
    "RevisionHTTPClient",
    "RevisionHTTPFrontend",
    "RevisionLRUCache",
    "RevisionResult",
    "RevisionServer",
    "RevisionStream",
    "RunJournal",
    "ServingMetrics",
    "SOURCE_CACHE",
    "SOURCE_DEADLINE",
    "SOURCE_DEDUP",
    "SOURCE_ENGINE",
    "SOURCE_GATE",
    "SOURCE_JOURNAL",
    "SOURCE_SHED",
    "StreamingScheduler",
    "WorkerFaults",
    "dataset_fingerprint",
    "revision_key",
    "score_key",
]
