"""Retrying HTTP client for the revision service — the first real
network client in the repo.

:class:`RevisionHTTPClient` speaks to a
:class:`~repro.serving.http.RevisionHTTPFrontend` over stdlib
``http.client`` and wraps every request in the retry discipline a
flaky network demands:

* **Per-request timeouts** — every socket operation is bounded by
  ``timeout_s``; a stalled server read becomes a retryable
  ``TimeoutError``, never a hung client.
* **Capped exponential backoff with full jitter** — transport faults
  (connection refused/reset, truncated body, torn status line) and
  retryable statuses (408/500/502/504) sleep
  ``uniform(0, min(backoff_cap_s, backoff_base_s * 2**attempt))``
  before the next attempt, so a thundering herd of clients decorrelates
  instead of synchronising on the cap.
* **Retry-After honored** — a ``429`` (admission control) or ``503``
  (overload/drain) with a ``Retry-After`` header sleeps what the server
  asked for; the honored seconds are recorded in
  :attr:`ServingMetrics.retry_after_honored_s`.
* **Total retry budget** — at most ``max_attempts`` tries per request;
  spending the budget raises a typed
  :class:`~repro.errors.RetryBudgetExceededError` carrying the final
  underlying error as ``__cause__``.  Client errors (400/404/413) are
  never retried — retrying a malformed request cannot fix it.

Retries are **at-least-once** on the wire — a reset after the server
read the request means the work happens even though the reply was lost.
The service makes the composition effectively **exactly-once**: results
are keyed by pair content in the server's LRU/dedup cache, so the retry
finds the finished result (or attaches to the in-flight computation)
instead of decoding again.  ``tests/test_fuzz_network.py`` pins this:
under random connection faults every pair resolves exactly once with
token parity and zero server-side duplicates.

The façade mirrors :class:`~repro.serving.client.InProcessRevisionClient`
(``revise_pairs`` / ``score_pairs`` / ``revise_dataset``), so the
crash-safe :class:`~repro.serving.journal.RunJournal` composes here too:
pass ``journal=`` and every result is journaled as it arrives, and a
resumed run serves journaled pairs without touching the network.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

import numpy as np

from ..core.coachlm import RevisionStats
from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair, Origin
from ..errors import RetryBudgetExceededError, ServingError
from .journal import dataset_fingerprint, run_config_hash
from .metrics import ServingMetrics
from .requests import SOURCE_JOURNAL, RevisionResult

#: Statuses worth retrying: the request may succeed verbatim later.
RETRYABLE_STATUSES = frozenset({408, 429, 500, 502, 503, 504})
#: Statuses that honor ``Retry-After`` when the server sends one.
RETRY_AFTER_STATUSES = frozenset({429, 503})


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header (delta form only), or None."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


class RevisionHTTPClient:
    """Retrying JSON/HTTP client for one revision front-end.

    ``base_url`` is the front-end's address (see
    :attr:`RevisionHTTPFrontend.address`).  ``metrics`` aggregates the
    client's retry counters — pass the service's own
    :class:`ServingMetrics` to see client and server behaviour on one
    dashboard, or leave the default for a private collector.  ``seed``
    makes the jittered backoff reproducible (fuzz harnesses pin it).

    Each attempt uses a fresh connection: retry semantics stay trivial
    (no half-poisoned keep-alive streams) and fault injection can
    reason per-connection.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        max_attempts: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        metrics: ServingMetrics | None = None,
        seed: int = 0,
    ):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ServingError(f"unsupported base_url {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._host = parts.hostname
        self._port = parts.port or 80
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._rng = np.random.default_rng(seed)

    # -- one request with retries ------------------------------------------------
    def _backoff_s(self, attempt: int) -> float:
        """Full-jitter backoff: uniform over [0, min(cap, base * 2^n))."""
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempt))
        return float(self._rng.uniform(0.0, ceiling))

    def _attempt(self, path: str, body: bytes) -> tuple[int, str | None, bytes]:
        """One HTTP round trip → (status, retry_after_header, raw_body)."""
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        try:
            conn.request(
                "POST", path, body, {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            raw = response.read()
            return response.status, response.getheader("Retry-After"), raw
        finally:
            conn.close()

    def _request(self, path: str, payload: dict) -> dict:
        """POST with the full retry discipline; returns the 200 payload."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            retry_after: float | None = None
            try:
                status, retry_after_header, raw = self._attempt(path, body)
            except (OSError, http.client.HTTPException) as error:
                # Transport fault: refused, reset, stalled (timeout),
                # truncated body (IncompleteRead), torn status line
                # (BadStatusLine/RemoteDisconnected).  All retryable.
                last_error = error
            else:
                if status == 200:
                    try:
                        return json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError) as error:
                        # A 200 with an unparseable body is a truncation
                        # the length check missed — treat as transport.
                        last_error = ServingError(
                            f"corrupt 200 body from {path}: {error}"
                        )
                elif status in RETRYABLE_STATUSES:
                    if status in RETRY_AFTER_STATUSES:
                        retry_after = _parse_retry_after(retry_after_header)
                    last_error = ServingError(
                        f"HTTP {status} from {path}: "
                        f"{raw[:200].decode('utf-8', 'replace')}"
                    )
                else:
                    # 400/404/413...: retrying cannot fix the request.
                    raise ServingError(
                        f"HTTP {status} from {path}: "
                        f"{raw[:200].decode('utf-8', 'replace')}"
                    )
            if attempt + 1 >= self.max_attempts:
                break
            delay = (
                retry_after
                if retry_after is not None
                else self._backoff_s(attempt)
            )
            self.metrics.record_retry(
                retry_after if retry_after is not None else 0.0
            )
            if delay > 0.0:
                time.sleep(delay)
        self.metrics.record_gave_up()
        assert last_error is not None
        raise RetryBudgetExceededError(
            f"request to {path} failed after {self.max_attempts} attempts"
        ) from last_error

    # -- streaming ---------------------------------------------------------------
    def stream_revise(self, pair: InstructionPair, priority: int = 0):
        """Revise one pair with incremental token delivery (a generator).

        Yields ``("tokens", [ids...])`` events as the server produces
        them, then exactly one ``("done", RevisionResult)``.  A server
        preemption of the sequence appears as a pause between token
        events, never as an error.  Unlike :meth:`revise_pair` this is a
        **single attempt with no retries**: a stream's side effects are
        observable as they happen, so replaying one is not transparent —
        transport faults and terminal ``error`` events raise
        :class:`ServingError` and the caller decides whether the request
        is safe to resubmit (the server's dedup cache makes a fresh
        non-streamed retry find finished work).
        """
        body = json.dumps(
            {**self._pair_payload(pair), "stream": True, "priority": priority},
            sort_keys=True,
        ).encode("utf-8")
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        try:
            try:
                conn.request(
                    "POST", "/revise", body,
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as error:
                raise ServingError(f"stream transport fault: {error}") from error
            if response.status != 200:
                raw = response.read()
                raise ServingError(
                    f"HTTP {response.status} from /revise (stream): "
                    f"{raw[:200].decode('utf-8', 'replace')}"
                )
            for payload in self._iter_sse(response):
                event = payload.get("event")
                if event == "tokens":
                    yield "tokens", list(payload.get("token_ids", []))
                elif event == "done":
                    revised = pair
                    if payload.get("outcome") == "revised":
                        revised = pair.with_text(
                            payload["instruction"],
                            payload["response"],
                            Origin.COACHLM_REVISED,
                        )
                    yield "done", RevisionResult(
                        pair=revised,
                        outcome=str(payload.get("outcome", "")),
                        source=str(payload.get("source", "")),
                        latency_s=float(payload.get("latency_s", 0.0)),
                        generated_tokens=int(
                            payload.get("generated_tokens", 0)
                        ),
                    )
                    return
                else:
                    raise ServingError(
                        f"stream error event: {payload.get('error', '?')}"
                    )
            raise ServingError(
                "stream ended without a terminal done/error event"
            )
        finally:
            conn.close()

    @staticmethod
    def _iter_sse(response):
        """Yield decoded ``data: {json}`` SSE payloads until EOF."""
        try:
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line or not line.startswith(b"data: "):
                    continue
                try:
                    yield json.loads(line[len(b"data: "):].decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as error:
                    raise ServingError(
                        f"corrupt stream event: {error}"
                    ) from error
        except (OSError, http.client.HTTPException) as error:
            raise ServingError(f"stream transport fault: {error}") from error

    # -- single-pair façade ------------------------------------------------------
    def revise_pair(self, pair: InstructionPair) -> RevisionResult:
        """Revise one pair over HTTP (retrying); returns the terminal result."""
        payload = self._request("/revise", self._pair_payload(pair))
        revised = pair
        if payload.get("outcome") == "revised":
            revised = pair.with_text(
                payload["instruction"],
                payload["response"],
                Origin.COACHLM_REVISED,
            )
        return RevisionResult(
            pair=revised,
            outcome=str(payload.get("outcome", "")),
            source=str(payload.get("source", "")),
            latency_s=float(payload.get("latency_s", 0.0)),
            generated_tokens=int(payload.get("generated_tokens", 0)),
        )

    def score_pair(self, pair: InstructionPair) -> RevisionResult:
        """Teacher-force score one pair over HTTP (retrying)."""
        payload = self._request("/score", self._pair_payload(pair))
        score = None
        if payload.get("n_tokens") is not None:
            score = {
                key: payload.get(key)
                for key in (
                    "conditioned_nll",
                    "unconditioned_nll",
                    "ifd",
                    "response_perplexity",
                    "n_tokens",
                )
            }
        return RevisionResult(
            pair=pair,
            outcome=str(payload.get("outcome", "")),
            source=str(payload.get("source", "")),
            latency_s=float(payload.get("latency_s", 0.0)),
            score=score,
        )

    def _pair_payload(self, pair: InstructionPair) -> dict:
        return {
            "instruction": pair.instruction,
            "response": pair.response,
            "pair_id": pair.pair_id,
            "timeout_s": self.timeout_s,
        }

    # -- batch façade (journal-composable) ---------------------------------------
    def _journal_hash(self, kind: str, run_hash: str | None) -> str:
        """Journal identity for a remote run.

        A remote client cannot fingerprint the server's model, so the
        default hash only pins the operation kind (the dataset
        fingerprint still guards the inputs).  Callers revising the same
        dataset against *different* deployments should pass ``run_hash``
        (e.g. the coach's ``revision_run_hash()`` obtained out of band).
        """
        if run_hash is not None:
            return run_hash
        return run_config_hash({"kind": kind})

    def _run_pairs(
        self,
        pairs: list[InstructionPair],
        one,
        kind: str,
        journal=None,
        run_hash: str | None = None,
    ) -> list[RevisionResult]:
        completed = {}
        if journal is not None:
            replay = journal.open_run(
                self._journal_hash(kind, run_hash), dataset_fingerprint(pairs)
            )
            completed = replay.completed
            self.metrics.record_journal_replay(
                replay.records_replayed, replay.pairs_skipped
            )
            journal.record_submitted(
                [i for i in range(len(pairs)) if i not in completed]
            )
        results: list[RevisionResult] = []
        for index, pair in enumerate(pairs):
            if index in completed:
                done = completed[index]
                results.append(RevisionResult(
                    pair=done.apply(pair),
                    outcome=done.outcome,
                    source=SOURCE_JOURNAL,
                    latency_s=0.0,
                    generated_tokens=0,
                    score=done.score,
                ))
                continue
            try:
                result = one(pair)
            except ServingError as error:
                if journal is not None:
                    journal.record_failed(index, str(error))
                raise
            results.append(result)
            if journal is not None:
                journal.record_done(
                    index,
                    result.pair,
                    result.outcome,
                    result.generated_tokens,
                    result.score,
                )
        return results

    def revise_pairs(
        self, pairs: list[InstructionPair], journal=None,
        run_hash: str | None = None,
    ) -> list[RevisionResult]:
        """Revise pairs in order over HTTP; journal-composable."""
        return self._run_pairs(
            pairs, self.revise_pair, "http_revise", journal, run_hash
        )

    def score_pairs(
        self, pairs: list[InstructionPair], journal=None,
        run_hash: str | None = None,
    ) -> list[RevisionResult]:
        """Teacher-force score pairs in order over HTTP; journal-composable."""
        return self._run_pairs(
            pairs, self.score_pair, "http_score", journal, run_hash
        )

    def revise_dataset(
        self, dataset: InstructionDataset, journal=None,
        run_hash: str | None = None,
    ) -> tuple[InstructionDataset, RevisionStats]:
        """Drop-in for :meth:`CoachLM.revise_dataset`, served over HTTP."""
        pairs = list(dataset)
        results = self.revise_pairs(pairs, journal=journal, run_hash=run_hash)
        stats = RevisionStats()
        for result in results:
            stats.record(result.outcome)
        return (
            InstructionDataset(
                [result.pair for result in results],
                name=f"{dataset.name}-coachlm",
            ),
            stats,
        )
