"""Response composition: ideal, terse, polite and reference-grade variants.

Table II grades a RESPONSE on three levels.  In microtext those levels map
to surface features the rubric scorer can detect:

* **basic** — the correct answer, terminated with a period;
* **richness** (advanced, 80-90) — a ``; because …`` explanation clause, or
  for creative categories a multi-sentence body;
* **humanization** (advanced, 90-100) — the polite coda
  ``i hope this helps .``.

Reference responses for the four test sets are composed at different
*grades*, reproducing Table VI's provenance column (human / ChatGPT / Bard
references) and the relative reference difficulty visible in Table IX.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import VocabularyError
from . import vocabulary as V
from .tasks import TaskInstance, get_category, solve

Tokens = list[str]


def detokenize(tokens: Tokens) -> str:
    """Join microtext tokens into the canonical single-spaced string form."""
    return " ".join(tokens)


def tokenize(text: str) -> Tokens:
    """Split a microtext string back into tokens (inverse of detokenize)."""
    return text.split()


class ResponseGrade(enum.Enum):
    """Provenance grade of a reference response (Table VI column 4)."""

    ORACLE = "oracle"          #: rich + polite, always correct (Bard-sim).
    HUMAN = "human"            #: rich, mostly polite (expert-written).
    HUMAN_PLAIN = "human_plain"  #: rich, rarely polite (Self-Instruct humans).
    CHATGPT = "chatgpt"        #: sometimes terse, rarely polite (LLM-written).


def compose_response(
    instance: TaskInstance, *, rich: bool = True, polite: bool = True
) -> Tokens:
    """Compose a response to ``instance`` at the requested quality level.

    For non-creative categories a *rich* response is
    ``<answer> ; because <explanation> .`` and a terse one is
    ``<answer> .``.  Creative categories have multi-sentence oracle bodies;
    a terse creative response keeps only the first sentence.
    """
    answer, explanation = solve(instance)
    category = get_category(instance.category_id)
    if category.task_class == "creative":
        body = list(answer)
        if not rich:
            body = _first_sentence(body)
        tokens = body + ["."]
    elif rich:
        if not explanation:
            raise VocabularyError(
                f"category {instance.category_id} has no explanation clause"
            )
        tokens = list(answer) + [";"] + list(explanation) + ["."]
    else:
        tokens = list(answer) + ["."]
    if polite:
        tokens = tokens + list(V.POLITE_CODA)
    return tokens


def ideal_response(instance: TaskInstance) -> Tokens:
    """The highest-grade response: rich and polite."""
    return compose_response(instance, rich=True, polite=True)


def terse_response(instance: TaskInstance) -> Tokens:
    """A minimal correct response: answer only, no explanation, no coda."""
    return compose_response(instance, rich=False, polite=False)


def _first_sentence(tokens: Tokens) -> Tokens:
    if "." in tokens:
        return tokens[: tokens.index(".")]
    return list(tokens)


#: Probability of (rich, polite) per reference grade.
_GRADE_PROFILE: dict[ResponseGrade, tuple[float, float]] = {
    ResponseGrade.ORACLE: (1.0, 1.0),
    ResponseGrade.HUMAN: (1.0, 0.7),
    ResponseGrade.HUMAN_PLAIN: (0.85, 0.35),
    ResponseGrade.CHATGPT: (0.6, 0.15),
}


def compose_reference(
    instance: TaskInstance, grade: ResponseGrade, rng: np.random.Generator
) -> Tokens:
    """Compose a reference response at the given provenance grade."""
    p_rich, p_polite = _GRADE_PROFILE[grade]
    rich = bool(rng.random() < p_rich)
    polite = bool(rng.random() < p_polite)
    return compose_response(instance, rich=rich, polite=polite)


def contextualize_instruction(
    tokens: Tokens, rng: np.random.Generator
) -> Tokens:
    """Prepend a context-priming opener (Table II: Contextualization).

    The rubric scorer recognises the opener phrases in
    :data:`repro.textgen.vocabulary.CONTEXT_OPENERS` as evidence of a rich
    context (scenario, role, or chain-of-thought prompt).
    """
    opener = V.CONTEXT_OPENERS[int(rng.integers(0, len(V.CONTEXT_OPENERS)))]
    return list(opener) + list(tokens)


def has_context_marker(tokens: Tokens) -> bool:
    """True if the instruction carries a contextualization marker."""
    text = detokenize(tokens)
    if any(detokenize(list(opener)) in text for opener in V.CONTEXT_OPENERS):
        return True
    return detokenize(list(V.EXAMPLE_MARKER)) in text
