"""The 42-category task taxonomy of the ALPACA52K simulacrum.

The paper classifies instruction pairs into three difficulty classes used
for expertise-based assignment (Section II-E2):

1. *language tasks* — mostly objective answers (extraction, correction,
   summarising);
2. *Q&A* — open dialogue, suggestions, in-domain question answering;
3. *creative composition* — stories, copywriting.

The CoachLM150 test set spans 42 distinct categories (Section II-G).  We
define exactly 42 categories across the three classes.  Each category knows
how to

* sample slot values (:attr:`TaskCategory.sample`),
* render a clean instruction (:func:`render_instruction`), and
* solve itself with an oracle (:func:`solve`), returning the ideal answer
  plus a one-clause explanation used for "rich" responses.

Oracle knowledge is also woven into the pre-training corpus
(:mod:`repro.textgen.corpus`), mirroring the paper's premise that the
knowledge required for revision "exists in the pre-training stage" and is
merely *elicited* by instruction tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import VocabularyError
from . import vocabulary as V

CLASS_LANGUAGE = "language"
CLASS_QA = "qa"
CLASS_CREATIVE = "creative"

TASK_CLASSES = (CLASS_LANGUAGE, CLASS_QA, CLASS_CREATIVE)

Slots = dict[str, object]
Tokens = list[str]


@dataclass(frozen=True)
class TaskInstance:
    """One sampled task: a category plus concrete slot values.

    ``slots`` is JSON-serialisable so instances survive dataset round-trips;
    this is the *provenance* that lets the rubric scorer recompute the oracle
    answer for any pair, including pairs rewritten by CoachLM.
    """

    category_id: str
    slots: Slots

    def to_json(self) -> dict:
        return {"category_id": self.category_id, "slots": dict(self.slots)}

    @staticmethod
    def from_json(blob: dict) -> "TaskInstance":
        return TaskInstance(category_id=blob["category_id"], slots=dict(blob["slots"]))


@dataclass(frozen=True)
class TaskCategory:
    """A task template: sampler, instruction renderer and oracle solver."""

    category_id: str
    task_class: str
    sample: Callable[[np.random.Generator], Slots]
    render: Callable[[Slots], tuple[Tokens, int | None]]
    solve: Callable[[Slots], tuple[Tokens, Tokens]]


def _choice(rng: np.random.Generator, seq) -> object:
    return seq[int(rng.integers(0, len(seq)))]


def _distinct(rng: np.random.Generator, seq, k: int) -> list:
    idx = rng.choice(len(seq), size=k, replace=False)
    return [seq[int(i)] for i in idx]


def _payload_sentence(slots: Slots) -> Tokens:
    """Shared declarative payload: ``the <color> <animal> <verb> near the <place>``."""
    return ["the", str(slots["color"]), str(slots["animal"]), str(slots["verb"]),
            "near", "the", str(slots["place"])]


def _sighting_sentence(slots: Slots) -> Tokens:
    """Shared payload: ``<name> saw <n> <animal> at the <place>``."""
    return [str(slots["name"]), "saw", str(slots["n"]), str(slots["animal"]),
            "at", "the", str(slots["place"])]


def _with_payload(head: Tokens, payload: Tokens) -> tuple[Tokens, int]:
    tokens = head + [":"] + payload
    return tokens, len(head) + 1


_REGISTRY: dict[str, TaskCategory] = {}


def _register(category: TaskCategory) -> None:
    if category.category_id in _REGISTRY:
        raise VocabularyError(f"duplicate category {category.category_id}")
    _REGISTRY[category.category_id] = category


def _def(category_id: str, task_class: str, sample, render, solve) -> None:
    _register(TaskCategory(category_id, task_class, sample, render, solve))


# ---------------------------------------------------------------------------
# Class 1 — language tasks (objective answers)
# ---------------------------------------------------------------------------

def _sample_scene(rng) -> Slots:
    return {
        "color": _choice(rng, V.COLORS),
        "animal": _choice(rng, V.ANIMALS),
        "verb": _choice(rng, V.VERBS_3RD),
        "place": _choice(rng, V.PLACES),
    }


_def(
    "extract_color", CLASS_LANGUAGE, _sample_scene,
    lambda s: _with_payload(["find", "the", "color", "in"], _payload_sentence(s)),
    lambda s: ([str(s["color"])],
               ["because", str(s["color"]), "is", "the", "color", "word"]),
)

_def(
    "extract_animal", CLASS_LANGUAGE, _sample_scene,
    lambda s: _with_payload(["find", "the", "animal", "in"], _payload_sentence(s)),
    lambda s: ([str(s["animal"])],
               ["because", str(s["animal"]), "is", "the", "animal", "word"]),
)


def _sample_sighting(rng) -> Slots:
    return {
        "name": _choice(rng, V.NAMES),
        "n": int(rng.integers(2, 10)),
        "animal": _choice(rng, V.ANIMALS),
        "place": _choice(rng, V.PLACES),
    }


_def(
    "extract_number", CLASS_LANGUAGE, _sample_sighting,
    lambda s: _with_payload(["find", "the", "number", "in"], _sighting_sentence(s)),
    lambda s: ([str(s["n"])], ["because", str(s["n"]), "is", "the", "number", "word"]),
)

_def(
    "extract_name", CLASS_LANGUAGE, _sample_sighting,
    lambda s: _with_payload(["find", "the", "name", "in"], _sighting_sentence(s)),
    lambda s: ([str(s["name"])],
               ["because", str(s["name"]), "is", "the", "name", "word"]),
)


def _sample_items(rng) -> Slots:
    k = int(rng.integers(2, 6))
    return {"items": _distinct(rng, V.COLORS + V.OBJECTS, k)}


_def(
    "count_items", CLASS_LANGUAGE, _sample_items,
    lambda s: _with_payload(["count", "the", "items", "in"], [str(w) for w in s["items"]]),
    lambda s: ([str(len(s["items"]))],
               ["because", "the", "list", "has", str(len(s["items"])), "items"]),
)


def _sample_nums(rng) -> Slots:
    k = int(rng.integers(3, 5))
    return {"nums": [int(x) for x in _distinct(rng, range(10), k)]}


_def(
    "sort_ascending", CLASS_LANGUAGE, _sample_nums,
    lambda s: _with_payload(["sort", "the", "numbers", "in", "rising", "order"],
                            [str(x) for x in s["nums"]]),
    lambda s: ([str(x) for x in sorted(s["nums"])],
               ["because", "the", "numbers", "follow", "rising", "order"]),
)

_def(
    "sort_descending", CLASS_LANGUAGE, _sample_nums,
    lambda s: _with_payload(["sort", "the", "numbers", "in", "falling", "order"],
                            [str(x) for x in s["nums"]]),
    lambda s: ([str(x) for x in sorted(s["nums"], reverse=True)],
               ["because", "the", "numbers", "follow", "falling", "order"]),
)


def _sample_objects(rng) -> Slots:
    k = int(rng.integers(3, 5))
    return {"items": _distinct(rng, V.OBJECTS, k)}


_def(
    "reverse_list", CLASS_LANGUAGE, _sample_objects,
    lambda s: _with_payload(["reverse", "the", "list"], [str(w) for w in s["items"]]),
    lambda s: ([str(w) for w in reversed(s["items"])],
               ["because", "the", "last", "item", "comes", "first"]),
)

_def(
    "max_number", CLASS_LANGUAGE, _sample_nums,
    lambda s: _with_payload(["find", "the", "biggest", "number", "in"],
                            [str(x) for x in s["nums"]]),
    lambda s: ([str(max(s["nums"]))],
               ["because", str(max(s["nums"])), "exceeds", "each", "item"]),
)

_def(
    "min_number", CLASS_LANGUAGE, _sample_nums,
    lambda s: _with_payload(["find", "the", "smallest", "number", "in"],
                            [str(x) for x in s["nums"]]),
    lambda s: ([str(min(s["nums"]))],
               ["because", "each", "item", "exceeds", str(min(s["nums"]))]),
)


def _sample_grammar(rng) -> Slots:
    return {
        "pron": _choice(rng, ("he", "she", "it")),
        "verb": _choice(rng, V.VERBS_BASE),
        "tail": _choice(rng, ("now", "every day", "near the hill")),
    }


_def(
    "grammar_fix", CLASS_LANGUAGE, _sample_grammar,
    lambda s: _with_payload(["fix", "the", "grammar"],
                            [str(s["pron"]), str(s["verb"])] + str(s["tail"]).split()),
    lambda s: ([str(s["pron"]), V.VERB_FIX[str(s["verb"])]] + str(s["tail"]).split(),
               ["because", V.VERB_FIX[str(s["verb"])], "follows", str(s["pron"])]),
)


def _sample_spelling(rng) -> Slots:
    # The corrected typo must differ from the accompanying noun, or the
    # answer would contain a legitimate adjacent repeat ("the chair chair")
    # indistinguishable from a redundancy flaw.
    typo = str(_choice(rng, tuple(V.TYPO_MAP)))
    nouns = tuple(n for n in V.ANIMALS + V.OBJECTS if n != V.TYPO_MAP[typo])
    return {"typo": typo, "noun": _choice(rng, nouns)}


_def(
    "spelling_fix", CLASS_LANGUAGE, _sample_spelling,
    lambda s: _with_payload(["fix", "the", "spelling"],
                            ["the", str(s["typo"]), str(s["noun"])]),
    lambda s: (["the", V.TYPO_MAP[str(s["typo"])], str(s["noun"])],
               ["because", str(s["typo"]), "means", V.TYPO_MAP[str(s["typo"])]]),
)


def _sample_copy(rng) -> Slots:
    k = int(rng.integers(3, 6))
    return {"words": _distinct(rng, V.COLORS + V.OBJECTS + V.PLACES, k)}


_def(
    "copy_exact", CLASS_LANGUAGE, _sample_copy,
    lambda s: _with_payload(["repeat", "exactly"], [str(w) for w in s["words"]]),
    lambda s: ([str(w) for w in s["words"]],
               ["because", "the", "words", "follow", "the", "order"]),
)


def _sample_topic(rng) -> Slots:
    v1, v2 = _distinct(rng, V.VERBS_3RD, 2)
    return {
        "animal": _choice(rng, V.ANIMALS),
        "v1": v1,
        "v2": v2,
        "place": _choice(rng, V.PLACES),
    }


_def(
    "topic_find", CLASS_LANGUAGE, _sample_topic,
    lambda s: _with_payload(
        ["give", "the", "topic", "of"],
        ["the", str(s["animal"]), str(s["v1"]), "at", "the", str(s["place"]), ".",
         "the", str(s["animal"]), str(s["v2"]), "every", "day"]),
    lambda s: ([str(s["animal"])],
               ["because", "each", "sentence", "tells", "about",
                "the", str(s["animal"])]),
)

_def(
    "first_item", CLASS_LANGUAGE, _sample_objects,
    lambda s: _with_payload(["find", "the", "first", "item", "in"],
                            [str(w) for w in s["items"]]),
    lambda s: ([str(s["items"][0])],
               ["because", "the", "list", "starts", "with", str(s["items"][0])]),
)

_def(
    "last_item", CLASS_LANGUAGE, _sample_objects,
    lambda s: _with_payload(["find", "the", "last", "item", "in"],
                            [str(w) for w in s["items"]]),
    lambda s: ([str(s["items"][-1])],
               ["because", "the", "list", "ends", "with", str(s["items"][-1])]),
)

# ---------------------------------------------------------------------------
# Class 2 — Q&A
# ---------------------------------------------------------------------------


def _sample_add(rng) -> Slots:
    a = int(rng.integers(0, 10))
    b = int(rng.integers(0, 10))
    return {"a": a, "b": b}


_def(
    "add_numbers", CLASS_QA, _sample_add,
    lambda s: (["add", str(s["a"]), "and", str(s["b"])], None),
    lambda s: ([str(int(s["a"]) + int(s["b"]))],
               ["because", str(s["a"]), "and", str(s["b"]), "make",
                str(int(s["a"]) + int(s["b"]))]),
)


def _sample_sub(rng) -> Slots:
    a = int(rng.integers(1, 10))
    b = int(rng.integers(0, a + 1))
    return {"a": a, "b": b}


_def(
    "subtract_numbers", CLASS_QA, _sample_sub,
    lambda s: (["take", str(s["b"]), "from", str(s["a"])], None),
    lambda s: ([str(int(s["a"]) - int(s["b"]))],
               ["because", str(s["b"]), "and", str(int(s["a"]) - int(s["b"])),
                "make", str(s["a"])]),
)


def _sample_pair_nums(rng) -> Slots:
    a, b = _distinct(rng, range(10), 2)
    return {"a": int(a), "b": int(b)}


_def(
    "compare_bigger", CLASS_QA, _sample_pair_nums,
    lambda s: (["which", "is", "bigger", ":", str(s["a"]), "or", str(s["b"]), "?"], 4),
    lambda s: ([str(max(int(s["a"]), int(s["b"])))],
               ["because", str(max(int(s["a"]), int(s["b"]))), "exceeds",
                str(min(int(s["a"]), int(s["b"])))]),
)

_def(
    "compare_smaller", CLASS_QA, _sample_pair_nums,
    lambda s: (["which", "is", "smaller", ":", str(s["a"]), "or", str(s["b"]), "?"], 4),
    lambda s: ([str(min(int(s["a"]), int(s["b"])))],
               ["because", str(max(int(s["a"]), int(s["b"]))), "exceeds",
                str(min(int(s["a"]), int(s["b"])))]),
)

_def(
    "yes_no_bigger", CLASS_QA, _sample_pair_nums,
    lambda s: (["is", str(s["a"]), "bigger", "than", str(s["b"]), "?"], None),
    lambda s: ((["yes"] if int(s["a"]) > int(s["b"]) else ["no"]),
               ["because", str(max(int(s["a"]), int(s["b"]))), "exceeds",
                str(min(int(s["a"]), int(s["b"])))]),
)


def _sample_fact(rng) -> Slots:
    return {"subject": _choice(rng, tuple(V.FACT_COLORS))}


_def(
    "fact_color", CLASS_QA, _sample_fact,
    lambda s: (["what", "color", "is", "the", str(s["subject"]), "?"], None),
    lambda s: ([V.FACT_COLORS[str(s["subject"])]],
               ["because", "the", str(s["subject"]), "is",
                V.FACT_COLORS[str(s["subject"])]]),
)


def _sample_object(rng) -> Slots:
    return {"object": _choice(rng, V.OBJECTS)}


_def(
    "object_use", CLASS_QA, _sample_object,
    lambda s: (["what", "does", "a", str(s["object"]), "do", "?"], None),
    lambda s: (["a", str(s["object"])] + V.OBJECT_USES[str(s["object"])].split(),
               ["because", "that", "is", "its", "use"]),
)


def _sample_animal(rng) -> Slots:
    return {"animal": _choice(rng, V.ANIMALS)}


_def(
    "animal_home", CLASS_QA, _sample_animal,
    lambda s: (["where", "does", "the", str(s["animal"]), "live", "?"], None),
    lambda s: (["the", str(s["animal"]), "lives", "at", "the",
                V.ANIMAL_HOMES[str(s["animal"])]],
               ["because", "the", V.ANIMAL_HOMES[str(s["animal"])],
                "is", "its", "place"]),
)


def _sample_sentiment(rng) -> Slots:
    positive = bool(rng.integers(0, 2))
    verbs = V.POSITIVE_VERBS if positive else V.NEGATIVE_VERBS
    return {
        "verb": _choice(rng, verbs),
        "target": _choice(rng, V.PLACES + V.OBJECTS),
        "positive": positive,
    }


_def(
    "sentiment", CLASS_QA, _sample_sentiment,
    lambda s: _with_payload(["classify", "the", "feeling"],
                            ["i", str(s["verb"]), "the", str(s["target"])]),
    lambda s: ((["positive"] if s["positive"] else ["negative"]),
               ["because", str(s["verb"]), "shows", "a",
                "positive" if s["positive"] else "negative", "feeling"]),
)


def _sample_gift(rng) -> Slots:
    return {"recipient": _choice(rng, tuple(V.GIFT_TABLE))}


_def(
    "gift_advice", CLASS_QA, _sample_gift,
    lambda s: (["suggest", "a", "gift", "for", "a", str(s["recipient"])], None),
    lambda s: (["a", V.GIFT_TABLE[str(s["recipient"])][0]],
               ["because"] + V.GIFT_TABLE[str(s["recipient"])][1].split()),
)


def _sample_place_advice(rng) -> Slots:
    return {"purpose": _choice(rng, tuple(V.PLACE_TABLE))}


_def(
    "place_advice", CLASS_QA, _sample_place_advice,
    lambda s: (["suggest", "a", "place", "to", str(s["purpose"])], None),
    lambda s: (["the", V.PLACE_TABLE[str(s["purpose"])][0]],
               ["because"] + V.PLACE_TABLE[str(s["purpose"])][1].split()),
)

_def(
    "dialogue_greeting", CLASS_QA, lambda rng: {},
    lambda s: _with_payload(["complete", "the", "dialogue"],
                            ["hello", ",", "how", "are", "you", "?"]),
    lambda s: (["i", "am", "fine", ",", "thank", "you"],
               ["because", "a", "kind", "answer", "follows", "hello"]),
)

_def(
    "dialogue_farewell", CLASS_QA, lambda rng: {},
    lambda s: _with_payload(["complete", "the", "dialogue"],
                            ["goodbye", "for", "now", "."]),
    lambda s: (["goodbye", ",", "thank", "you"],
               ["because", "a", "kind", "answer", "follows", "goodbye"]),
)


def _sample_next(rng) -> Slots:
    return {"n": int(rng.integers(0, 9))}


_def(
    "next_number", CLASS_QA, _sample_next,
    lambda s: (["what", "number", "comes", "after", str(s["n"]), "?"], None),
    lambda s: ([str(int(s["n"]) + 1)],
               ["because", str(int(s["n"]) + 1), "follows", str(s["n"])]),
)

# ---------------------------------------------------------------------------
# Class 3 — creative composition (multi-sentence bodies, no "because" clause)
# ---------------------------------------------------------------------------


def _sample_story_animal(rng) -> Slots:
    return {
        "adj": _choice(rng, V.ADJECTIVES),
        "animal": _choice(rng, V.ANIMALS),
        "place": _choice(rng, V.PLACES),
        "object": _choice(rng, V.OBJECTS),
        "verb": _choice(rng, V.VERBS_3RD),
    }


_def(
    "story_animal", CLASS_CREATIVE, _sample_story_animal,
    lambda s: (["write", "a", "story", "about", "a", str(s["animal"])], None),
    lambda s: (["once", "a", str(s["adj"]), str(s["animal"]), "lived", "near",
                "the", str(s["place"]), ".", "the", str(s["animal"]),
                str(s["verb"]), "every", "day", ".", "at", "last", "the",
                str(s["animal"]), "found", "a", str(s["object"])], []),
)


def _sample_story_place(rng) -> Slots:
    adj, adj2 = _distinct(rng, V.ADJECTIVES, 2)
    return {"name": _choice(rng, V.NAMES), "place": _choice(rng, V.PLACES),
            "adj": adj, "adj2": adj2}


_def(
    "story_place", CLASS_CREATIVE, _sample_story_place,
    lambda s: (["write", "a", "story", "set", "at", "the", str(s["place"])], None),
    lambda s: (["once", str(s["name"]), "went", "to", "the", str(s["place"]), ".",
                "the", str(s["place"]), "was", str(s["adj"]), "and",
                str(s["adj2"]), ".", str(s["name"]), "came", "back", "happy"], []),
)


def _sample_poem(rng) -> Slots:
    o1, o2 = _distinct(rng, V.OBJECTS, 2)
    return {"color": _choice(rng, V.COLORS), "o1": o1, "o2": o2}


_def(
    "poem_color", CLASS_CREATIVE, _sample_poem,
    lambda s: (["write", "a", "poem", "about", "the", "color", str(s["color"])], None),
    lambda s: (["i", "see", "the", str(s["color"]), str(s["o1"]), ".",
                "i", "see", "the", str(s["color"]), str(s["o2"]), ".",
                "the", str(s["color"]), "day", "ends", "soft"], []),
)

_USE_POOL = tuple(sorted(set(V.OBJECT_USES.values())))


def _sample_brainstorm(rng) -> Slots:
    return {"object": _choice(rng, V.OBJECTS), "uses": _distinct(rng, _USE_POOL, 3)}


_def(
    "brainstorm_uses", CLASS_CREATIVE, _sample_brainstorm,
    lambda s: (["list", "three", "uses", "for", "a", str(s["object"])], None),
    lambda s: (["one", "a", str(s["object"])] + str(s["uses"][0]).split() + ["."] +
               ["two", "a", str(s["object"])] + str(s["uses"][1]).split() + ["."] +
               ["three", "a", str(s["object"])] + str(s["uses"][2]).split(), []),
)


def _sample_slogan(rng) -> Slots:
    adj, adj2 = _distinct(rng, V.ADJECTIVES, 2)
    return {"object": _choice(rng, V.OBJECTS), "adj": adj, "adj2": adj2,
            "place": _choice(rng, V.PLACES)}


_def(
    "slogan", CLASS_CREATIVE, _sample_slogan,
    lambda s: (["write", "a", "slogan", "for", "a", str(s["object"])], None),
    lambda s: (["the", str(s["adj"]), str(s["object"]), "makes", "every",
                "day", "bright", ".", "see", "it", "at", "the",
                str(s["place"])], []),
)


def _sample_roleplay(rng) -> Slots:
    return {"place": _choice(rng, V.PLACES)}


_def(
    "roleplay_guide", CLASS_CREATIVE, _sample_roleplay,
    lambda s: (["act", "as", "a", "guide", "and", "greet", "a", "visitor"], None),
    lambda s: (["hello", ",", "welcome", "to", "the", str(s["place"]), ".",
                "i", "am", "your", "guide", ".", "i", "hope", "you", "enjoy",
                "the", str(s["place"])], []),
)


def _sample_continue(rng) -> Slots:
    return {"animal": _choice(rng, V.ANIMALS), "place": _choice(rng, V.PLACES),
            "object": _choice(rng, V.OBJECTS)}


_def(
    "continue_story", CLASS_CREATIVE, _sample_continue,
    lambda s: _with_payload(["continue", "the", "story"],
                            ["the", str(s["animal"]), "went", "to", "the",
                             str(s["place"]), "."]),
    lambda s: (["at", "the", str(s["place"]), "the", str(s["animal"]), "found",
                "a", str(s["object"]), ".", "the", str(s["animal"]),
                "was", "happy"], []),
)


def _sample_invent(rng) -> Slots:
    return {"adj": _choice(rng, V.ADJECTIVES), "animal": _choice(rng, V.ANIMALS),
            "name": _choice(rng, V.NAMES)}


_def(
    "invent_name", CLASS_CREATIVE, _sample_invent,
    lambda s: (["invent", "a", "name", "for", "a", str(s["adj"]),
                str(s["animal"])], None),
    lambda s: (["a", "good", "name", "is", str(s["name"]), ".", str(s["name"]),
                "means", "a", str(s["adj"]), str(s["animal"])], []),
)


def _sample_scene_desc(rng) -> Slots:
    adj, adj2, adj3 = _distinct(rng, V.ADJECTIVES, 3)
    return {"adj": adj, "adj2": adj2, "adj3": adj3,
            "place": _choice(rng, V.PLACES), "animal": _choice(rng, V.ANIMALS),
            "verb": _choice(rng, V.VERBS_3RD)}


_def(
    "describe_scene", CLASS_CREATIVE, _sample_scene_desc,
    lambda s: (["describe", "a", str(s["adj"]), str(s["place"])], None),
    lambda s: (["the", str(s["place"]), "is", str(s["adj"]), "and",
                str(s["adj2"]), ".", "a", str(s["animal"]), str(s["verb"]),
                "near", "the", str(s["place"]), ".", "the", "day", "is",
                str(s["adj3"])], []),
)


def _sample_wish(rng) -> Slots:
    return {"name": _choice(rng, V.NAMES), "adj": _choice(rng, V.ADJECTIVES),
            "object": _choice(rng, V.OBJECTS)}


_def(
    "kind_wish", CLASS_CREATIVE, _sample_wish,
    lambda s: (["write", "a", "kind", "wish", "for", str(s["name"])], None),
    lambda s: (["may", "every", "day", "be", str(s["adj"]), "for",
                str(s["name"]), ".", "may", str(s["name"]), "find", "a",
                str(s["object"])], []),
)


def _sample_riddle(rng) -> Slots:
    adj, adj2 = _distinct(rng, V.ADJECTIVES, 2)
    return {"object": _choice(rng, V.OBJECTS), "adj": adj, "adj2": adj2}


_def(
    "riddle_object", CLASS_CREATIVE, _sample_riddle,
    lambda s: (["write", "a", "riddle", "about", "a", str(s["object"])], None),
    lambda s: (["it"] + V.OBJECT_USES[str(s["object"])].split() + [".",
                "it", "is", str(s["adj"]), "and", str(s["adj2"]), ".",
                "what", "is", "it", "?", "a", str(s["object"])], []),
)


def _sample_headline(rng) -> Slots:
    return {"adj": _choice(rng, V.ADJECTIVES), "animal": _choice(rng, V.ANIMALS),
            "place": _choice(rng, V.PLACES)}


_def(
    "headline_town", CLASS_CREATIVE, _sample_headline,
    lambda s: (["write", "a", "headline", "about", "the", str(s["place"])], None),
    lambda s: ([str(s["adj"]), str(s["animal"]), "found", "at", "the",
                str(s["place"]), ".", "people", "of", "the", str(s["place"]),
                "are", "happy"], []),
)

# ---------------------------------------------------------------------------
# Public registry API
# ---------------------------------------------------------------------------

#: Frozen category registry, keyed by category id; exactly 42 entries.
CATEGORIES: dict[str, TaskCategory] = dict(_REGISTRY)

CATEGORY_IDS: tuple[str, ...] = tuple(CATEGORIES)

assert len(CATEGORIES) == 42, f"expected 42 categories, got {len(CATEGORIES)}"


def get_category(category_id: str) -> TaskCategory:
    """Look up a category, raising :class:`VocabularyError` if unknown."""
    try:
        return CATEGORIES[category_id]
    except KeyError:
        raise VocabularyError(f"unknown task category {category_id!r}") from None


def categories_by_class(task_class: str) -> tuple[TaskCategory, ...]:
    """All categories belonging to one of the three difficulty classes."""
    if task_class not in TASK_CLASSES:
        raise VocabularyError(f"unknown task class {task_class!r}")
    return tuple(c for c in CATEGORIES.values() if c.task_class == task_class)


def sample_instance(
    rng: np.random.Generator, category_id: str | None = None
) -> TaskInstance:
    """Sample a concrete task instance, optionally pinned to one category."""
    if category_id is None:
        category_id = CATEGORY_IDS[int(rng.integers(0, len(CATEGORY_IDS)))]
    category = get_category(category_id)
    return TaskInstance(category_id=category_id, slots=category.sample(rng))


def render_instruction(instance: TaskInstance) -> tuple[Tokens, int | None]:
    """Render the clean instruction tokens; returns ``(tokens, payload_start)``.

    ``payload_start`` is the index of the first payload token (after the
    ``:`` separator) for tasks that carry a payload, else ``None``.  The
    ambiguity-injection defect removes everything from that index on.
    """
    category = get_category(instance.category_id)
    return category.render(instance.slots)


def solve(instance: TaskInstance) -> tuple[Tokens, Tokens]:
    """Oracle-solve the instance: ``(answer_tokens, explanation_tokens)``.

    Creative categories return an empty explanation; their answer is a
    multi-sentence body whose richness is judged by sentence count instead.
    """
    category = get_category(instance.category_id)
    return category.solve(instance.slots)
