"""Microtext: a closed synthetic language for instruction-pair simulation.

The paper's experiments manipulate the *quality* of ``(instruction,
response)`` pairs drawn from ALPACA52K.  Since the real dataset's text is a
product of GPT-3.5, we substitute a closed templated language ("microtext")
whose pairs can be

* generated with controlled defects (``repro.data``),
* scored against the paper's Table II rubric (``repro.quality``),
* solved by an oracle, so correctness is checkable, and
* learned by a from-scratch tiny transformer (``repro.nn``).

Public surface:

* :mod:`repro.textgen.vocabulary` — lexicons and the closed word list.
* :mod:`repro.textgen.tasks` — the 42-category task taxonomy plus oracles.
* :mod:`repro.textgen.responses` — ideal/terse/polite response composition.
* :mod:`repro.textgen.grammar` — token-level noise operators.
* :mod:`repro.textgen.corpus` — pre-training corpus for backbone LMs.
"""

from .vocabulary import (
    ALL_WORDS,
    ANIMALS,
    COLORS,
    DIGITS,
    NOISE_TOKENS,
    OBJECTS,
    PLACES,
    TYPO_MAP,
    all_words,
)
from .tasks import (
    CATEGORIES,
    CLASS_CREATIVE,
    CLASS_LANGUAGE,
    CLASS_QA,
    TaskCategory,
    TaskInstance,
    categories_by_class,
    get_category,
    sample_instance,
)
from .responses import (
    ResponseGrade,
    compose_reference,
    compose_response,
    ideal_response,
    terse_response,
)
from .corpus import build_pretrain_corpus

__all__ = [
    "ALL_WORDS",
    "ANIMALS",
    "COLORS",
    "DIGITS",
    "NOISE_TOKENS",
    "OBJECTS",
    "PLACES",
    "TYPO_MAP",
    "all_words",
    "CATEGORIES",
    "CLASS_CREATIVE",
    "CLASS_LANGUAGE",
    "CLASS_QA",
    "TaskCategory",
    "TaskInstance",
    "categories_by_class",
    "get_category",
    "sample_instance",
    "ResponseGrade",
    "compose_reference",
    "compose_response",
    "ideal_response",
    "terse_response",
    "build_pretrain_corpus",
]
