"""Token-level noise operators.

These are the primitive corruptions from which :mod:`repro.data.defects`
builds the defect injectors, and which the deployment simulator uses to
dirty raw user cases.  All operators are pure: they return a new token list
and never mutate their input.
"""

from __future__ import annotations

import numpy as np

from . import vocabulary as V

Tokens = list[str]

#: Inverse typo map: correct word -> misspelled form.
_REVERSE_TYPOS = {fix: typo for typo, fix in V.TYPO_MAP.items()}


def inject_typos(tokens: Tokens, rng: np.random.Generator, max_typos: int = 2) -> Tokens:
    """Replace up to ``max_typos`` words with their misspelled forms.

    Falls back to duplicating a random token when no word in ``tokens`` has
    a known typo form, so the operator always produces a detectable flaw.
    """
    out = list(tokens)
    candidates = [i for i, t in enumerate(out) if t in _REVERSE_TYPOS]
    if not candidates:
        return duplicate_word(out, rng)
    count = min(max_typos, len(candidates))
    picks = rng.choice(len(candidates), size=count, replace=False)
    for p in picks:
        i = candidates[int(p)]
        out[i] = _REVERSE_TYPOS[out[i]]
    return out


def inject_noise(tokens: Tokens, rng: np.random.Generator, count: int = 2) -> Tokens:
    """Insert ``count`` out-of-language garble tokens at random positions."""
    out = list(tokens)
    for _ in range(count):
        pos = int(rng.integers(0, len(out) + 1))
        noise = V.NOISE_TOKENS[int(rng.integers(0, len(V.NOISE_TOKENS)))]
        out.insert(pos, noise)
    return out


def duplicate_word(tokens: Tokens, rng: np.random.Generator) -> Tokens:
    """Duplicate one random token (redundancy flaw, Readability check 2)."""
    if not tokens:
        return []
    i = int(rng.integers(0, len(tokens)))
    return tokens[: i + 1] + [tokens[i]] + tokens[i + 1 :]


def truncate(tokens: Tokens, rng: np.random.Generator, min_keep: int = 1) -> Tokens:
    """Cut the tail of the token list, dropping terminal punctuation.

    Keeps at least ``min_keep`` tokens and always strictly shortens inputs
    longer than ``min_keep``.
    """
    if len(tokens) <= min_keep:
        return list(tokens)
    keep = int(rng.integers(min_keep, len(tokens)))
    out = tokens[:keep]
    while out and out[-1] in (".", ";", ","):
        out = out[:-1]
    return out if out else tokens[:min_keep]


def shuffle_span(tokens: Tokens, rng: np.random.Generator, span: int = 3) -> Tokens:
    """Scramble a short span of tokens (word-order flaw)."""
    if len(tokens) < span + 1:
        return list(reversed(tokens))
    start = int(rng.integers(0, len(tokens) - span))
    segment = list(tokens[start : start + span])
    rng.shuffle(segment)
    if segment == tokens[start : start + span]:
        segment = list(reversed(segment))
    return tokens[:start] + segment + tokens[start + span :]


def drop_terminal_period(tokens: Tokens) -> Tokens:
    """Remove the final period if present (layout flaw)."""
    if tokens and tokens[-1] == ".":
        return tokens[:-1]
    return list(tokens)


def strip_noise(tokens: Tokens) -> Tokens:
    """Remove garble tokens — the rule-based cleaning primitive."""
    return [t for t in tokens if t not in V.NOISE_TOKENS]


def fix_typos(tokens: Tokens) -> Tokens:
    """Replace known misspellings with their correct forms."""
    return [V.TYPO_MAP.get(t, t) for t in tokens]


def dedupe_adjacent(tokens: Tokens) -> Tokens:
    """Collapse immediately repeated tokens (inverse of duplicate_word)."""
    out: Tokens = []
    for t in tokens:
        if not out or out[-1] != t:
            out.append(t)
    return out


def ensure_terminal_period(tokens: Tokens) -> Tokens:
    """Append a period when the list does not end with terminal punctuation."""
    if tokens and tokens[-1] not in (".", "?", "!"):
        return tokens + ["."]
    return list(tokens)
