"""Pre-training corpus for the backbone tiny LMs.

The paper's premise (Section II-F1) is that the knowledge required for both
instruction following and content revision already exists in the backbone's
pre-training corpus; instruction tuning merely aligns it.  We reproduce
that split: the corpus below teaches the tiny LM the microtext language,
its knowledge base (facts, arithmetic, object uses) and its discourse
patterns (explanations, polite codas, stories) — but contains *no*
instruction-formatted pairs.
"""

from __future__ import annotations

import numpy as np

from . import vocabulary as V
from .responses import ideal_response
from .tasks import CATEGORY_IDS, sample_instance

Tokens = list[str]


def _fact_sentences() -> list[Tokens]:
    sentences: list[Tokens] = []
    for subject, color in V.FACT_COLORS.items():
        sentences.append(["the", subject, "is", color, "."])
    for obj, use in V.OBJECT_USES.items():
        sentences.append(["a", obj] + use.split() + ["."])
    for animal, home in V.ANIMAL_HOMES.items():
        sentences.append(["the", animal, "lives", "at", "the", home, "."])
    for recipient, (gift, reason) in V.GIFT_TABLE.items():
        sentences.append(["a", gift, "is", "a", "good", "gift", "for", "a",
                          recipient, "because"] + reason.split() + ["."])
    for purpose, (place, reason) in V.PLACE_TABLE.items():
        sentences.append(["the", place, "is", "a", "good", "place", "to",
                          purpose, "because"] + reason.split() + ["."])
    for typo, fix in V.TYPO_MAP.items():
        sentences.append([typo, "means", fix, "."])
    for base, third in V.VERB_FIX.items():
        sentences.append([third, "follows", "he", "and", "she", "."])
        sentences.append(["he", third, "every", "day", "."])
    return sentences


def _arithmetic_sentences() -> list[Tokens]:
    sentences: list[Tokens] = []
    for a in range(10):
        for b in range(10):
            sentences.append([str(a), "and", str(b), "make", str(a + b), "."])
    for a in range(10):
        for b in range(a):
            sentences.append([str(a), "exceeds", str(b), "."])
    for a in range(9):
        sentences.append([str(a + 1), "follows", str(a), "."])
    return sentences


def _scene_sentences(rng: np.random.Generator, count: int) -> list[Tokens]:
    sentences: list[Tokens] = []
    for _ in range(count):
        sentences.append([
            "the",
            str(V.COLORS[int(rng.integers(0, len(V.COLORS)))]),
            str(V.ANIMALS[int(rng.integers(0, len(V.ANIMALS)))]),
            str(V.VERBS_3RD[int(rng.integers(0, len(V.VERBS_3RD)))]),
            "near", "the",
            str(V.PLACES[int(rng.integers(0, len(V.PLACES)))]),
            ".",
        ])
    return sentences


def _discourse_sentences(rng: np.random.Generator, count: int) -> list[Tokens]:
    """Full ideal responses sampled across all categories.

    These expose the LM to explanation clauses, polite codas and creative
    bodies — the *surface forms* of high-quality responses — without any
    instruction prompt attached.
    """
    sentences: list[Tokens] = []
    for _ in range(count):
        instance = sample_instance(rng)
        sentences.append(ideal_response(instance))
    sentences.append(["hello", ",", "how", "are", "you", "?",
                      "i", "am", "fine", ",", "thank", "you", "."])
    sentences.append(["goodbye", "for", "now", ".", "goodbye", ",",
                      "thank", "you", "."])
    return sentences


def _echo_sequences(rng: np.random.Generator, count: int) -> list[Tokens]:
    """Repetition drills: ``<sentence> <sep> <sentence>``.

    These train the induction behaviour a coach model depends on — copying
    a span it has just read.  ``<sep>`` is injected by the corpus packer;
    here the marker word "repeat" separates the two copies.
    """
    sequences: list[Tokens] = []
    for _ in range(count):
        sentence = _random_scene(rng)
        sequences.append(sentence + ["repeat", ":"] + sentence)
    return sequences


def _cleanup_sequences(rng: np.random.Generator, count: int) -> list[Tokens]:
    """Revision drills: a corrupted sentence followed by its clean form.

    The paper argues the knowledge needed for content revision "exists in
    the pre-training stage" (Section II-F1) — e.g. ALPACA52K itself
    contains grammar-correction tasks.  These drills are that knowledge:
    typo→fix, garble→clean, truncation→completion patterns.
    """
    from . import grammar  # local import to avoid a cycle at module load

    sequences: list[Tokens] = []
    for i in range(count):
        clean = _random_scene(rng)
        mode = i % 3
        if mode == 0:
            dirty = grammar.inject_typos(clean, rng)
        elif mode == 1:
            dirty = grammar.inject_noise(clean, rng, count=1)
        else:
            dirty = grammar.truncate(clean, rng, min_keep=2)
        sequences.append(dirty + ["revised", ":"] + clean + ["."])
    return sequences


def _qa_format_sequences(rng: np.random.Generator, count: int) -> list[Tokens]:
    """Q&A-formatted text: ``instruction : … response : …``.

    Real pre-training corpora are full of question/answer formatted text;
    exposing the tiny LM to the raw format (with oracle-quality answers)
    mirrors that, so instruction tuning later *aligns* rather than teaches
    from scratch.
    """
    from .tasks import render_instruction

    sequences: list[Tokens] = []
    for _ in range(count):
        instance = sample_instance(rng)
        instruction, _ = render_instruction(instance)
        sequences.append(
            ["instruction", ":"] + list(instruction)
            + ["response", ":"] + ideal_response(instance)
        )
    return sequences


def _pair_revision_sequences(rng: np.random.Generator, count: int) -> list[Tokens]:
    """Generic pair-revision drills in the Fig. 3 field layout.

    ``instruction : X response : Y revised instruction : X' revised
    response : Y'`` where X'/Y' repair *surface* corruption only (typos,
    garble, lost punctuation, truncation).  This is the paper's claim made
    concrete: ALPACA52K itself contains correction tasks, so a pre-trained
    LLM already carries generic revision skill; coach tuning later aligns
    that skill with *expert* revision style (expansion, tone, correctness
    fixes) — which these drills deliberately do not demonstrate.
    """
    from . import grammar
    from .tasks import render_instruction

    sequences: list[Tokens] = []
    for i in range(count):
        instance = sample_instance(rng)
        instruction, _ = render_instruction(instance)
        response = ideal_response(instance) if i % 2 else (
            compose_terse(instance)
        )
        dirty_instruction = list(instruction)
        dirty_response = list(response)
        mode = i % 4
        if mode == 0:
            dirty_response = grammar.inject_typos(dirty_response, rng)
        elif mode == 1:
            dirty_response = grammar.inject_noise(dirty_response, rng, count=1)
        elif mode == 2:
            dirty_instruction = grammar.inject_typos(dirty_instruction, rng, max_typos=1)
        else:
            dirty_response = grammar.drop_terminal_period(dirty_response)
            dirty_response = grammar.duplicate_word(dirty_response, rng)
        # Surface repair only: the clean forms, not enriched forms.
        sequences.append(
            ["instruction", ":"] + dirty_instruction
            + ["response", ":"] + dirty_response
            + ["revised", "instruction", ":"] + list(instruction)
            + ["revised", "response", ":"] + list(response)
        )
    return sequences


def compose_terse(instance) -> Tokens:
    from .responses import terse_response

    return terse_response(instance)


def _template_sentences() -> list[Tokens]:
    """Natural sentences covering the prompt-template vocabulary."""
    return [
        "please improve the quality of the instruction and response pair .".split(),
        "the revised response follows the instruction .".split(),
        "a good response follows a good instruction .".split(),
        "the output follows the input .".split(),
        "please repeat the words in order .".split(),
        "a revised pair has a good instruction and a good response .".split(),
    ]


def _random_scene(rng: np.random.Generator) -> Tokens:
    return [
        "the",
        str(V.COLORS[int(rng.integers(0, len(V.COLORS)))]),
        str(V.ANIMALS[int(rng.integers(0, len(V.ANIMALS)))]),
        str(V.VERBS_3RD[int(rng.integers(0, len(V.VERBS_3RD)))]),
        "near", "the",
        str(V.PLACES[int(rng.integers(0, len(V.PLACES)))]),
        ".",
    ]


def build_pretrain_corpus(
    rng: np.random.Generator, n_sentences: int = 2000
) -> list[Tokens]:
    """Build a shuffled pre-training corpus of roughly ``n_sentences``.

    Always contains the complete knowledge base, arithmetic tables and
    template sentences; the remainder is split between scenes, discourse,
    repetition drills, cleanup drills and Q&A-formatted text — the
    ingredients instruction tuning and coach tuning later elicit.
    """
    corpus = _fact_sentences() + _arithmetic_sentences() + _template_sentences()
    remaining = max(0, n_sentences - len(corpus))
    n_scene = remaining // 10
    n_echo = remaining // 10
    n_cleanup = remaining * 15 // 100
    n_qa = remaining // 5
    n_revision = remaining * 35 // 100
    n_discourse = remaining - n_scene - n_echo - n_cleanup - n_qa - n_revision
    corpus += _scene_sentences(rng, n_scene)
    corpus += _echo_sequences(rng, n_echo)
    corpus += _cleanup_sequences(rng, n_cleanup)
    corpus += _qa_format_sequences(rng, n_qa)
    corpus += _pair_revision_sequences(rng, n_revision)
    corpus += _discourse_sentences(rng, n_discourse)
    order = rng.permutation(len(corpus))
    return [corpus[int(i)] for i in order]
