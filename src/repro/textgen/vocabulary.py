"""Lexicons of the microtext language.

Microtext is a whitespace-tokenised language: every token is a lowercase
word, a digit string, or one of a few punctuation marks.  The full closed
vocabulary is exposed through :func:`all_words`; the tiny LM's tokenizer is
built directly from it, so *any* string composed by this package is
representable without unknown tokens.
"""

from __future__ import annotations

from ..errors import VocabularyError

# ---------------------------------------------------------------------------
# Content lexicons
# ---------------------------------------------------------------------------

COLORS = ("red", "blue", "green", "yellow", "white", "black", "purple", "orange")
ANIMALS = ("fox", "dog", "cat", "owl", "bear", "wolf", "hare", "crow")
OBJECTS = ("box", "cup", "lamp", "book", "chair", "stone", "coin", "bell")
ADJECTIVES = ("big", "small", "quick", "quiet", "bright", "dark", "round", "soft")
PLACES = ("hill", "lake", "town", "cave", "field", "barn", "dock", "mill")
NAMES = ("mira", "oren", "tala", "finn", "vera", "kato", "lena", "remo")

#: Third-person verbs paired with their (ungrammatical-in-context) base forms.
VERBS_3RD = ("runs", "sits", "jumps", "sleeps", "sings", "waits", "hides", "moves")
VERBS_BASE = ("run", "sit", "jump", "sleep", "sing", "wait", "hide", "move")
VERB_FIX = dict(zip(VERBS_BASE, VERBS_3RD))

POSITIVE_VERBS = ("love", "like", "enjoy", "praise")
NEGATIVE_VERBS = ("hate", "dislike", "fear", "avoid")

#: Digits 0-9 plus two-digit sums up to 18 (so single-digit addition closes).
DIGITS = tuple(str(i) for i in range(10))
SUM_DIGITS = tuple(str(i) for i in range(19))

# ---------------------------------------------------------------------------
# Knowledge base (facts the backbone LM can memorise during pre-training)
# ---------------------------------------------------------------------------

#: ``what color is the <subject>?`` facts.
FACT_COLORS = {
    "sky": "blue",
    "grass": "green",
    "snow": "white",
    "coal": "black",
    "sun": "yellow",
    "sea": "blue",
    "leaf": "green",
    "rose": "red",
}

#: ``what does a <object> do?`` facts.
OBJECT_USES = {
    "box": "stores things",
    "cup": "holds water",
    "lamp": "gives light",
    "book": "tells stories",
    "chair": "offers a seat",
    "stone": "marks a path",
    "coin": "buys goods",
    "bell": "makes sound",
}

#: ``where does the <animal> live?`` facts.
ANIMAL_HOMES = {
    "fox": "cave",
    "dog": "barn",
    "cat": "mill",
    "owl": "dock",
    "bear": "hill",
    "wolf": "field",
    "hare": "lake",
    "crow": "town",
}

#: ``suggest a gift for a <recipient>`` facts with rationales.
GIFT_TABLE = {
    "friend": ("book", "friends enjoy stories"),
    "teacher": ("lamp", "teachers read at night"),
    "child": ("bell", "children love sound"),
    "guest": ("cup", "guests drink tea"),
    "helper": ("coin", "helpers earn a reward"),
    "singer": ("bell", "singers follow sound"),
}

#: ``suggest a place to <purpose>`` facts with rationales.
PLACE_TABLE = {
    "rest": ("field", "the field is quiet"),
    "read": ("mill", "the mill is calm"),
    "swim": ("lake", "the lake has water"),
    "climb": ("hill", "the hill is steep"),
    "hide": ("cave", "the cave is dark"),
    "meet": ("town", "the town has people"),
}

# ---------------------------------------------------------------------------
# Surface-noise material
# ---------------------------------------------------------------------------

#: Misspelled forms injected by the spelling-noise defect; values are the
#: correct words.  Also the answer key for the ``spelling_fix`` task.
TYPO_MAP = {
    "qick": "quick",
    "blu": "blue",
    "gren": "green",
    "brigt": "bright",
    "sleps": "sleeps",
    "yelow": "yellow",
    "purle": "purple",
    "chiar": "chair",
}

#: Garble tokens used by the heavy-noise defect (clearly out-of-language).
NOISE_TOKENS = ("zq1", "zq2", "zq3", "zq4")

#: Marker phrase of the machine-tone defect (Table II: Humanization check).
MACHINE_TONE_PREFIX = ("as", "an", "ai", "model", "i", "cannot", "feel", ",")

#: Marker phrase of the unsafe-content defect (Table II: Safety red line).
UNSAFE_PHRASE = ("ignore", "safety", "and", "proceed", "anyway")

#: Polite coda marking a humanised response.
POLITE_CODA = ("i", "hope", "this", "helps", ".")

#: Context-priming openers marking a contextualised instruction.
CONTEXT_OPENERS = (
    ("you", "are", "a", "helpful", "tutor", "."),
    ("you", "are", "a", "careful", "editor", "."),
    ("think", "step", "by", "step", "."),
)

#: Example-giving connective marking a contextualised instruction.
EXAMPLE_MARKER = ("for", "example", ",")

PUNCTUATION = (".", ",", ":", ";", "?", "!")

#: Function words used by templates.
FUNCTION_WORDS = (
    "the", "a", "an", "in", "at", "on", "of", "for", "and", "or", "to",
    "i", "you", "he", "she", "it", "is", "are", "was", "saw", "has", "have",
    "what", "which", "where", "who", "how", "do", "does", "did", "answer",
    "yes", "no", "not", "now", "near", "every", "day", "with", "from",
    "find", "count", "sort", "reverse", "repeat", "fix", "give", "list",
    "write", "add", "take", "classify", "suggest", "complete", "continue",
    "act", "invent", "describe", "tell", "exactly", "items", "numbers",
    "words", "number", "color", "animal", "name", "item", "list", "story",
    "poem", "slogan", "riddle", "headline", "wish", "feeling", "grammar",
    "spelling", "sentence", "topic", "first", "last", "biggest", "smallest",
    "bigger", "smaller", "than", "comes", "after", "plus", "minus",
    "equals", "make", "makes", "because", "positive", "negative",
    "hello", "goodbye", "fine", "thank", "thanks", "am", "good", "kind",
    "uses", "use", "gift", "place", "about", "set", "lines", "two", "three",
    "one", "once", "lived", "found", "flew", "went", "came", "said",
    "friend", "teacher", "child", "guest", "helper", "singer", "visitor",
    "guide", "greet", "dialogue", "order", "rising", "falling", "my",
    "your", "this", "that", "all", "be", "so", "step", "by", "think",
    "helpful", "careful", "tutor", "editor", "feel", "cannot", "as",
    "ai", "model", "ignore", "safety", "proceed", "anyway", "hope",
    "helps", "example", "sky", "grass", "snow", "sun", "coal", "sea",
    "leaf", "rose", "water", "light", "seat", "path", "goods", "sound",
    "stories", "things", "people", "tea", "night", "reward", "read",
    "swim", "climb", "meet", "rest", "calm", "steep", "here", "there",
    "happy", "sad", "old", "new", "long", "live", "lives", "stays",
    "holds", "gives", "offers", "marks", "buys", "tells", "stores",
    "word", "shows", "exceeds", "means", "starts", "ends", "between",
    "most", "more", "less", "end", "start", "look", "see", "very",
    "each", "welcome", "like", "photo", "link", "chords", "scale",
    "lyric", "rewrite", "whole", "page", "image", "video", "minor",
    "drawn", "shown", "follows", "follow", "begins", "its", "their",
    "will", "can", "may", "back", "away", "up", "down", "out",
)


def all_words() -> tuple[str, ...]:
    """Return the full closed vocabulary of microtext, sorted and unique."""
    words: set[str] = set()
    for group in (
        COLORS, ANIMALS, OBJECTS, ADJECTIVES, PLACES, NAMES,
        VERBS_3RD, VERBS_BASE, POSITIVE_VERBS, NEGATIVE_VERBS,
        SUM_DIGITS, NOISE_TOKENS, PUNCTUATION, FUNCTION_WORDS,
    ):
        words.update(group)
    words.update(TYPO_MAP)
    words.update(TYPO_MAP.values())
    words.update(FACT_COLORS)
    words.update(FACT_COLORS.values())
    for use in OBJECT_USES.values():
        words.update(use.split())
    words.update(ANIMAL_HOMES.values())
    for gift, reason in GIFT_TABLE.values():
        words.add(gift)
        words.update(reason.split())
    for place, reason in PLACE_TABLE.values():
        words.add(place)
        words.update(reason.split())
    for phrase in (MACHINE_TONE_PREFIX, UNSAFE_PHRASE, POLITE_CODA, EXAMPLE_MARKER):
        words.update(phrase)
    for opener in CONTEXT_OPENERS:
        words.update(opener)
    return tuple(sorted(words))


#: Materialised closed vocabulary (a few hundred words).
ALL_WORDS = all_words()

_WORD_SET = frozenset(ALL_WORDS)


def is_known_word(token: str) -> bool:
    """True if ``token`` belongs to the closed microtext vocabulary."""
    return token in _WORD_SET


def require_known(tokens: list[str] | tuple[str, ...]) -> None:
    """Raise :class:`VocabularyError` if any token is out-of-language."""
    unknown = [t for t in tokens if t not in _WORD_SET]
    if unknown:
        raise VocabularyError(f"tokens outside microtext vocabulary: {unknown[:5]}")
