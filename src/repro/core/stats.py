"""Revision statistics — Table VII of the paper.

Average word lengths and word-level edit distances of a dataset before and
after CoachLM revision, plus how many instructions/responses changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import InstructionDataset
from ..editdist import word_edit_distance
from ..errors import DatasetError


@dataclass(frozen=True)
class RevisionTableStats:
    """The Table VII rows for one (original, revised) dataset pairing."""

    original_avg_instruction_len: float
    original_avg_response_len: float
    revised_avg_instruction_len: float
    revised_avg_response_len: float
    instruction_edit_distance: float
    response_edit_distance: float
    instructions_changed: int
    responses_changed: int
    total: int

    def rows(self) -> list[dict[str, float | str]]:
        """Rendered rows in the paper's layout."""
        return [
            {
                "dataset": "Original",
                "instr_avg_len": round(self.original_avg_instruction_len, 1),
                "instr_edit_dist": "-",
                "resp_avg_len": round(self.original_avg_response_len, 1),
                "resp_edit_dist": "-",
            },
            {
                "dataset": "CoachLM-revised",
                "instr_avg_len": round(self.revised_avg_instruction_len, 1),
                "instr_edit_dist": round(self.instruction_edit_distance, 1),
                "resp_avg_len": round(self.revised_avg_response_len, 1),
                "resp_edit_dist": round(self.response_edit_distance, 1),
            },
        ]


def revision_statistics(
    original: InstructionDataset, revised: InstructionDataset
) -> RevisionTableStats:
    """Compute Table VII for an original dataset and its revision."""
    if len(original) != len(revised) or len(original) == 0:
        raise DatasetError(
            f"datasets must be parallel and non-empty: "
            f"{len(original)} vs {len(revised)}"
        )
    instr_dists: list[int] = []
    resp_dists: list[int] = []
    instr_changed = 0
    resp_changed = 0
    for before, after in zip(original, revised):
        d_i = word_edit_distance(before.instruction, after.instruction)
        d_r = word_edit_distance(before.response, after.response)
        instr_dists.append(d_i)
        resp_dists.append(d_r)
        instr_changed += d_i > 0
        resp_changed += d_r > 0
    return RevisionTableStats(
        original_avg_instruction_len=float(
            np.mean([p.instruction_length for p in original])
        ),
        original_avg_response_len=float(
            np.mean([p.response_length for p in original])
        ),
        revised_avg_instruction_len=float(
            np.mean([p.instruction_length for p in revised])
        ),
        revised_avg_response_len=float(
            np.mean([p.response_length for p in revised])
        ),
        instruction_edit_distance=float(np.mean(instr_dists)),
        response_edit_distance=float(np.mean(resp_dists)),
        instructions_changed=instr_changed,
        responses_changed=resp_changed,
        total=len(original),
    )
