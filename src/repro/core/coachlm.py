"""The CoachLM facade: train once, revise instruction datasets.

Reproduces the full inference pipeline of Section III-B1:

1. every pair is wrapped in the Fig. 3 revision prompt and decoded;
2. outputs are cleaned of invalid characters and repeated strings;
3. invalid revisions (~1.3% in the paper) fall back to the original pair;
4. pairs whose instruction appeared in coach training are skipped to
   avoid data leakage (~1.3% in the paper) — originals pass through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair, Origin
from ..errors import GenerationError, ModelError
from ..experts.revision import RevisionRecord
from ..llm.prompts import encode_coach_prompt, parse_coach_output
from ..llm.tokenizer import WordTokenizer
from ..nn.decoding import BatchedEngine, GenerationRequest, InductionCopyBias
from ..nn.transformer import TransformerLM
from .postprocess import clean_revised_tokens, validate_revision
from .selection import select_by_alpha
from .training import CoachTrainingConfig, train_coach_model


class RevisionOutcome(enum.Enum):
    """Why a pair ended up with its revised (or original) text."""

    REVISED = "revised"
    INVALID_OUTPUT = "invalid_output"      #: fell back to original (~1.3%)
    LEAKAGE_SKIPPED = "leakage_skipped"    #: instruction seen in training (~1.3%)
    PROMPT_TOO_LONG = "prompt_too_long"    #: original exceeds the context window
    UNCHANGED = "unchanged"                 #: coach chose to keep the pair
    NOT_SELECTED = "not_selected"           #: below the IFD top-k revision cut
    REVIEW_REJECTED = "review_rejected"     #: revision failed the score self-review


@dataclass
class RevisionStats:
    """Aggregate outcome counts of one dataset revision run.

    Outcomes are keyed by string so the serving layer can record its own
    terminal states (``expired``, ``quality_gated``) alongside the
    :class:`RevisionOutcome` values.
    """

    outcomes: dict[str, int] = field(default_factory=dict)

    def record(self, outcome: "RevisionOutcome | str") -> None:
        key = outcome if isinstance(outcome, str) else outcome.value
        self.outcomes[key] = self.outcomes.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    def fraction(self, outcome: RevisionOutcome) -> float:
        if self.total == 0:
            return 0.0
        return self.outcomes.get(outcome.value, 0) / self.total


class CoachLM:
    """A trained coach model plus its revision pipeline.

    ``copy_bias`` adds a pointer-style bonus to the logits of tokens that
    appear in the original pair (plus revision-idiom tokens: the
    explanation connective, the polite coda, punctuation and the template
    markers).  A 6B backbone copies long spans natively; the tiny LM needs
    this decode-time assist to match that behaviour — see DESIGN.md §2.
    """

    def __init__(
        self,
        model: TransformerLM | None,
        tokenizer: WordTokenizer,
        trained_instructions: frozenset[str] = frozenset(),
        max_new_tokens: int = 72,
        copy_bias: float = 3.0,
    ):
        self.model = model
        self.tokenizer = tokenizer
        self.trained_instructions = trained_instructions
        self.max_new_tokens = max_new_tokens
        self.copy_bias = copy_bias
        self._idiom_ids = self._build_idiom_ids(tokenizer)
        # Computed once: the vocabulary scan behind this set is O(noise
        # lexicon) and used per pair on both the bias-vector and decode
        # paths.
        self._blocked = self._blocked_ids(tokenizer)

    @staticmethod
    def _build_idiom_ids(tokenizer: WordTokenizer) -> list[int]:
        idiom_words = (
            "because ; . : , ? revised instruction response "
            "i hope this helps one two three and the a"
        )
        ids = set(tokenizer.encode(idiom_words))
        ids.discard(tokenizer.specials.unk)
        ids.add(tokenizer.specials.eos)
        return sorted(ids)

    @staticmethod
    def _blocked_ids(tokenizer: WordTokenizer) -> frozenset[int]:
        """Tokens never boosted by the copy assist: planted surface noise."""
        from ..textgen import vocabulary as V

        words = list(V.NOISE_TOKENS) + list(V.TYPO_MAP) + [
            "ignore", "safety", "proceed", "anyway", "cannot", "feel", "ai",
        ]
        return frozenset(
            tokenizer.encode_word(w) for w in words
        ) - {tokenizer.specials.unk}

    def _copy_bias_vector(self, pair: InstructionPair) -> np.ndarray | None:
        if self.copy_bias <= 0.0 or self.model is None:
            return None
        bias = np.zeros(self.model.config.vocab_size, dtype=np.float32)
        pair_ids = set(
            self.tokenizer.encode(pair.instruction)
            + self.tokenizer.encode(pair.response)
        )
        pair_ids.discard(self.tokenizer.specials.unk)
        blocked = self._blocked
        for token_id in pair_ids:
            if token_id not in blocked:
                bias[token_id] = self.copy_bias * 0.5
        for token_id in self._idiom_ids:
            bias[token_id] = max(bias[token_id], self.copy_bias * 0.4)
        return bias

    def _revision_request(
        self, prompt: list[int], pair: InstructionPair
    ) -> GenerationRequest:
        """The engine request for one pair's copy-assisted revision decode.

        The induction bias (see :meth:`_generate_with_copy_assist`) is
        precomputed into a prompt follower index once per pair instead of
        being rediscovered by an O(prompt) scan at every step.
        """
        step_bias = (
            InductionCopyBias(prompt, self.copy_bias, self._blocked)
            if self.copy_bias > 0.0
            else None
        )
        return GenerationRequest(
            prompt_ids=prompt,
            max_new_tokens=self.max_new_tokens,
            eos_id=self.tokenizer.specials.eos,
            logit_bias=self._copy_bias_vector(pair),
            step_bias=step_bias,
        )

    def _generate_with_copy_assist(
        self, prompt: list[int], pair: InstructionPair
    ) -> list[int]:
        """Greedy decode with an explicit induction bias (sequential path).

        At each step, if the last one or two produced tokens match a span
        inside the prompt, the token following that span receives a logit
        bonus (longer matches earn more).  This is a hard induction head
        standing in for the reliable long-span copying of a billion-scale
        model; the LoRA-tuned LM still decides *where to edit* — its own
        logits can and do override the bias at revision points.

        :meth:`revise_dataset` runs the same decode through the batched
        engine; this per-pair path remains as the reference the engine is
        parity-tested against (and for one-off ``revise_pair`` calls).
        """
        assert self.model is not None
        model = self.model
        sp = self.tokenizer.specials
        budget = min(
            self.max_new_tokens, model.config.max_seq_len - len(prompt)
        )
        if budget <= 0:
            return []
        request = self._revision_request(prompt, pair)
        base_bias = request.logit_bias

        caches: list[dict] = [{"k": None, "v": None} for _ in model.blocks]
        logits = model._forward_numpy(
            np.asarray([prompt], dtype=np.int64), caches
        )[:, -1, :]
        produced: list[int] = []
        offset = len(prompt)
        for _ in range(budget):
            step = logits[0].copy()
            if base_bias is not None:
                step += base_bias
            if request.step_bias is not None:
                request.step_bias(produced, step)
            token = int(step.argmax())
            produced.append(token)
            if token == sp.eos:
                break
            logits = model._forward_numpy(
                np.asarray([[token]], dtype=np.int64), caches,
                position_offset=offset,
            )[:, -1, :]
            offset += 1
        return produced

    @staticmethod
    def _induction_followers(
        prompt: list[int], produced: list[int]
    ) -> list[tuple[int, float]]:
        """Candidate next tokens by suffix match against the prompt.

        Returns (token, strength) pairs; a bigram match earns full
        strength, a unigram match half.
        """
        followers: dict[int, float] = {}
        last = produced[-1]
        second = produced[-2] if len(produced) >= 2 else None
        n = len(prompt)
        for i in range(n - 1):
            if prompt[i] != last:
                continue
            strength = 0.5
            if second is not None and i > 0 and prompt[i - 1] == second:
                strength = 1.0
            follower = prompt[i + 1]
            followers[follower] = max(followers.get(follower, 0.0), strength)
        return list(followers.items())

    # -- construction ------------------------------------------------------------
    @classmethod
    def train(
        cls,
        backbone: TransformerLM,
        tokenizer: WordTokenizer,
        records: list[RevisionRecord],
        rng: np.random.Generator,
        alpha: float = 0.3,
        config: CoachTrainingConfig = CoachTrainingConfig(),
    ) -> "CoachLM":
        """Train CoachLM on the top-α slice of the expert revision dataset.

        ``alpha=0`` reproduces the paper's no-training control: the raw
        backbone is used for revision directly.
        """
        selected = select_by_alpha(records, alpha)
        if not selected:
            return cls(backbone.clone(), tokenizer, frozenset())
        model, _ = train_coach_model(backbone, tokenizer, selected, rng, config)
        # Leakage guard: the paper excludes pairs whose instructions were
        # seen during coach training (~1.3% of ALPACA52K).  Microtext
        # instructions from constant-slot categories collide textually, so
        # we key the guard on pair identity, which is what the paper's
        # exclusion amounts to on its scale.
        trained = frozenset(
            r.original.pair_id for r in selected if r.original.pair_id
        )
        return cls(model, tokenizer, trained)

    # -- revision ---------------------------------------------------------------
    def is_leakage_gated(self, pair: InstructionPair) -> bool:
        """True when the pair was seen during coach training (Eq. (2) guard).

        The single source of the leakage predicate — shared by the batch
        gate below and the serving layer's cache-bypass decision.
        """
        return bool(pair.pair_id) and pair.pair_id in self.trained_instructions

    def _pre_generate(
        self, pair: InstructionPair
    ) -> tuple[list[int] | None, RevisionOutcome | None]:
        """Gate one pair before decoding: (prompt, None) or (None, outcome)."""
        assert self.model is not None
        if self.is_leakage_gated(pair):
            return None, RevisionOutcome.LEAKAGE_SKIPPED
        prompt = encode_coach_prompt(self.tokenizer, pair)
        if len(prompt) >= self.model.config.max_seq_len - 4:
            return None, RevisionOutcome.PROMPT_TOO_LONG
        return prompt, None

    def _post_generate(
        self, pair: InstructionPair, output: list[int]
    ) -> tuple[InstructionPair, RevisionOutcome]:
        """Parse/clean/validate one decoded revision; fall back on failure."""
        try:
            instruction, response = parse_coach_output(self.tokenizer, output)
        except GenerationError:
            return pair, RevisionOutcome.INVALID_OUTPUT

        instruction_tokens = clean_revised_tokens(instruction.split())
        response_tokens = clean_revised_tokens(response.split())
        if not validate_revision(instruction_tokens, response_tokens):
            return pair, RevisionOutcome.INVALID_OUTPUT

        revised = pair.with_text(
            " ".join(instruction_tokens),
            " ".join(response_tokens),
            Origin.COACHLM_REVISED,
        )
        if (
            revised.instruction == pair.instruction
            and revised.response == pair.response
        ):
            return pair, RevisionOutcome.UNCHANGED
        return revised, RevisionOutcome.REVISED

    # Public per-pair pipeline hooks used by the online revision service
    # (:mod:`repro.serving`): gate → engine request → parse/clean/validate.
    # They share the exact code paths of :meth:`revise_dataset`, which is
    # what keeps served revisions token-for-token identical to batch runs.
    def prepare_revision(
        self, pair: InstructionPair
    ) -> tuple[GenerationRequest | None, RevisionOutcome | None]:
        """Gate one pair; return its engine request or a terminal outcome."""
        if self.model is None:
            raise ModelError("CoachLM has no model")
        prompt, outcome = self._pre_generate(pair)
        if prompt is None:
            return None, outcome
        return self._revision_request(prompt, pair), None

    def finalize_revision(
        self, pair: InstructionPair, output: list[int]
    ) -> tuple[InstructionPair, RevisionOutcome]:
        """Parse one decoded revision; falls back to ``pair`` on failure."""
        return self._post_generate(pair, output)

    def revise_pair(
        self, pair: InstructionPair
    ) -> tuple[InstructionPair, RevisionOutcome]:
        """Revise one pair; falls back to the original when necessary."""
        if self.model is None:
            raise ModelError("CoachLM has no model")
        prompt, outcome = self._pre_generate(pair)
        if prompt is None:
            assert outcome is not None
            return pair, outcome
        output = self._generate_with_copy_assist(prompt, pair)
        return self._post_generate(pair, output)

    def revision_run_hash(
        self, revise_top_k: int | None = None, self_review: bool = False
    ) -> str:
        """Identity hash of one :meth:`revise_dataset` run for the journal.

        Covers everything that can change the run's *outputs*: the
        decode knobs, the selection/review knobs, the leakage-gate set
        and a CRC fingerprint of the model's (tied) embedding weights.
        Scheduling knobs (batch size, chunking, paging) are deliberately
        excluded — the engine's pinned contract is that scheduling never
        changes tokens, so a resumed run may batch differently and still
        be byte-identical.
        """
        import json as _json
        import zlib

        from ..serving.journal import run_config_hash

        model_fp = ""
        if self.model is not None:
            weights = np.ascontiguousarray(self.model.tok_emb.weight.data)
            model_fp = f"{zlib.crc32(weights.tobytes()):08x}"
        gate_fp = zlib.crc32(
            _json.dumps(sorted(self.trained_instructions)).encode("utf-8")
        )
        return run_config_hash({
            "kind": "revise_dataset",
            "max_new_tokens": self.max_new_tokens,
            "copy_bias": self.copy_bias,
            "revise_top_k": revise_top_k,
            "self_review": self_review,
            "model": model_fp,
            "leakage_gate": f"{gate_fp:08x}",
            "vocab_size": self.tokenizer.vocab_size,
        })

    def revise_dataset(
        self,
        dataset: InstructionDataset,
        batch_size: int = DEFAULT_GEN_BATCH_SIZE,
        prefill_chunk_tokens: int | None = None,
        prefill_concurrency: int = 1,
        kv_page_tokens: int | None = None,
        revise_top_k: int | None = None,
        self_review: bool = False,
        journal=None,
    ) -> tuple[InstructionDataset, RevisionStats]:
        """Revise every pair of a dataset (Eq. (2): D_c = {θ_c(x'_c)}).

        Decoding runs through the batched engine — ``batch_size``
        sequences per forward pass, with ragged batched prefill and
        continuous slot refill — and is token-identical to calling
        :meth:`revise_pair` per pair.  ``prefill_chunk_tokens`` caps how
        much refill-prompt prefill a single engine step may do and
        ``prefill_concurrency`` lets that many refill prompts advance
        their chunks together (mostly serving-path knobs; offline runs
        usually leave chunking off).  ``kv_page_tokens`` switches the
        engine to the paged KV pool (memory scales with live tokens;
        identical tokens out).

        ``revise_top_k`` spends the decode budget where it helps most:
        teacher-force score the whole dataset (one batched
        :meth:`BatchedEngine.score` pass), rank by IFD, and revise only
        the ``k`` hardest pairs — the rest keep their text with outcome
        ``NOT_SELECTED``.  ``self_review`` closes the loop on every
        claimed revision: accept it only when it lowers response
        perplexity or improves IFD (else revert, ``REVIEW_REJECTED``),
        and feed accepted revisions back through the coach once more,
        keeping whichever round scored best.

        ``journal`` (a :class:`~repro.serving.journal.RunJournal`) makes
        the run crash-safe and resumable: every pair's terminal result
        is appended to an fsync'd write-ahead journal as it completes,
        and re-running with the same journal skips journaled-``DONE``
        pairs entirely (no re-decode) while producing a byte-identical
        final dataset — greedy decode is deterministic, so the redone
        tail matches the uninterrupted run token for token.  A journal
        written by a different configuration or dataset refuses to
        resume with :class:`~repro.errors.JournalMismatchError`.  With
        ``self_review`` the terminal result of a decoded pair is only
        known after the review pass, so ``DONE`` records for those pairs
        land post-review (gated pairs still journal immediately).
        """
        if self.model is None:
            raise ModelError("CoachLM has no model")
        pairs = list(dataset)

        replay = None
        if journal is not None:
            from ..serving.journal import dataset_fingerprint

            replay = journal.open_run(
                self.revision_run_hash(revise_top_k, self_review),
                dataset_fingerprint(pairs),
            )

        verdicts: list = []
        eligible: set[int] | None = None
        if revise_top_k is not None or self_review:
            from ..scoring.ifd import dataset_ifd

            verdicts = dataset_ifd(
                self.model, self.tokenizer, pairs,
                batch_size=batch_size, kv_page_tokens=kv_page_tokens,
            )
        if revise_top_k is not None:
            from ..scoring.selection import select_top_k

            selected, _rest = select_top_k(verdicts, revise_top_k)
            eligible = set(selected)

        # Gate every pair first; only eligible ones enter the decode fleet.
        # Journaled-DONE pairs from a previous incarnation are served from
        # the replay and never gated or decoded again.
        completed = replay.completed if replay is not None else {}
        gated: list[tuple[list[int] | None, RevisionOutcome | None]] = []
        for i, pair in enumerate(pairs):
            if i in completed:
                gated.append((None, None))
            elif eligible is not None and i not in eligible:
                gated.append((None, RevisionOutcome.NOT_SELECTED))
            else:
                gated.append(self._pre_generate(pair))
        decode_idx = [i for i, (p, _) in enumerate(gated) if p is not None]
        requests = [
            self._revision_request(gated[i][0], pairs[i]) for i in decode_idx
        ]
        if journal is not None:
            journal.record_submitted(decode_idx)
        engine = BatchedEngine(
            self.model,
            max_batch=batch_size,
            prefill_chunk_tokens=prefill_chunk_tokens,
            prefill_concurrency=prefill_concurrency,
            kv_page_tokens=kv_page_tokens,
        )
        outputs = iter(engine.generate(requests))

        # Replayed outcomes stay *strings* here: the self-review pass
        # keys on ``outcome is RevisionOutcome.REVISED``, so a replayed
        # pair (already post-review when it was journaled) is never
        # re-reviewed; ``RevisionStats.record`` takes either form.
        results: list[tuple[InstructionPair, RevisionOutcome | str]] = []
        decoded_tokens: dict[int, int] = {}
        for i, (pair, (prompt, outcome)) in enumerate(zip(pairs, gated)):
            if i in completed:
                done = completed[i]
                results.append((done.apply(pair), done.outcome))
            elif prompt is None:
                assert outcome is not None
                results.append((pair, outcome))
                if journal is not None:
                    journal.record_done(i, pair, outcome.value)
            else:
                output = next(outputs)
                decoded_tokens[i] = len(output)
                results.append(self._post_generate(pair, output))
                if journal is not None and not self_review:
                    revised, res_outcome = results[-1]
                    journal.record_done(
                        i, revised, res_outcome.value, len(output)
                    )

        if self_review:
            self._self_review_pass(
                pairs, results, verdicts, engine, batch_size, kv_page_tokens
            )
            if journal is not None:
                # A decoded pair's terminal state is only known after the
                # review pass (it may be reverted or re-revised); journal
                # it now that it is.
                for i in decode_idx:
                    revised, res_outcome = results[i]
                    journal.record_done(
                        i, revised, res_outcome.value, decoded_tokens.get(i, 0)
                    )

        stats = RevisionStats()
        revised_pairs: list[InstructionPair] = []
        for revised, outcome in results:
            stats.record(outcome)
            revised_pairs.append(revised)
        return (
            InstructionDataset(revised_pairs, name=f"{dataset.name}-coachlm"),
            stats,
        )

    def _self_review_pass(
        self,
        pairs: list[InstructionPair],
        results: list[tuple[InstructionPair, "RevisionOutcome | str"]],
        verdicts: list,
        engine: BatchedEngine,
        batch_size: int,
        kv_page_tokens: int | None,
    ) -> None:
        """Score-check claimed revisions in place (revise→score→re-revise).

        Each round batch-scores the current candidates against the best
        accepted version so far (round 0 baseline: the original pair's
        IFD), reverts rejections, and re-revises acceptances once —
        scoring rides :meth:`BatchedEngine.score`, so the whole pass
        costs two teacher-forced forwards per candidate per round.
        Pairs whose original could not be scored are left unreviewed.
        """
        from ..scoring.ifd import dataset_ifd
        from ..scoring.review import review_revision

        review_idx = [
            i for i, (_, outcome) in enumerate(results)
            if outcome is RevisionOutcome.REVISED and verdicts[i] is not None
        ]
        if not review_idx:
            return
        best = {i: (pairs[i], verdicts[i]) for i in review_idx}
        candidates = [(i, results[i][0]) for i in review_idx]
        max_rounds = 2  # the initial revision + one re-revise
        for round_no in range(max_rounds):
            cand_verdicts = dataset_ifd(
                self.model, self.tokenizer,
                [candidate for _, candidate in candidates],
                batch_size=batch_size, kv_page_tokens=kv_page_tokens,
            )
            accepted: list[int] = []
            for (i, candidate), verdict in zip(candidates, cand_verdicts):
                decision = review_revision(best[i][1], verdict)
                if decision.accepted:
                    best[i] = (candidate, verdict)
                    accepted.append(i)
            candidates = []
            if round_no + 1 >= max_rounds or not accepted:
                break
            # Feed accepted revisions back through the coach.  Greedy
            # decoding is deterministic, so only a *changed* pair is
            # worth a second look.
            regated = [(i, self._pre_generate(best[i][0])) for i in accepted]
            requests = [
                self._revision_request(prompt, best[i][0])
                for i, (prompt, _) in regated
                if prompt is not None
            ]
            outputs = iter(engine.generate(requests))
            for i, (prompt, _) in regated:
                if prompt is None:
                    continue
                candidate, outcome = self._post_generate(best[i][0], next(outputs))
                if outcome is RevisionOutcome.REVISED:
                    candidates.append((i, candidate))
        for i in review_idx:
            best_pair, _ = best[i]
            if best_pair is pairs[i]:
                results[i] = (pairs[i], RevisionOutcome.REVIEW_REJECTED)
            else:
                results[i] = (best_pair, RevisionOutcome.REVISED)
