"""CoachLM — the paper's primary contribution (Section II-F).

* :mod:`repro.core.selection` — α-selection: keep the top-α fraction of
  expert revision pairs by edit distance ("quality control of human
  input", Section II-F2);
* :mod:`repro.core.training` — coach instruction tuning: LoRA-tune a
  backbone on Fig. 3-formatted (x → x_r) pairs for seven epochs;
* :mod:`repro.core.postprocess` — output cleanup and validity checks
  ("automatic post-processing … using regular expressions", ~1.3% invalid
  outputs fall back to originals, Section III-B1);
* :mod:`repro.core.coachlm` — the :class:`CoachLM` facade: train once,
  revise pairs or whole datasets, with the training-set leakage guard;
* :mod:`repro.core.stats` — Table VII revision statistics.
"""

from .selection import select_by_alpha
from .training import CoachTrainingConfig, train_coach_model
from .postprocess import clean_revised_tokens, validate_revision
from .coachlm import CoachLM, RevisionOutcome, RevisionStats
from .stats import RevisionTableStats, revision_statistics

__all__ = [
    "select_by_alpha",
    "CoachTrainingConfig",
    "train_coach_model",
    "clean_revised_tokens",
    "validate_revision",
    "CoachLM",
    "RevisionOutcome",
    "RevisionStats",
    "RevisionTableStats",
    "revision_statistics",
]
