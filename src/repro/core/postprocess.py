"""Post-processing of CoachLM outputs (Section III-B1).

The paper applies regular-expression cleanup to remove "invalid characters
and repeated strings that were occasionally produced", and replaces the
~1.3% of outputs that are not valid instruction pairs with the originals.
Our equivalents over token sequences:

* strip out-of-language garble and ``<unk>`` placeholders;
* collapse immediately repeated tokens and repeated tail n-grams (the
  decoder's loop failure mode);
* validate shape: both fields non-empty, plausible lengths.
"""

from __future__ import annotations

from ..textgen import vocabulary as V

Tokens = list[str]

#: Longest n-gram checked for degenerate tail repetition.
_MAX_LOOP_NGRAM = 4

#: A revised field longer than this is judged degenerate (Table VII's
#: longest legitimate responses stay well under it).
MAX_FIELD_TOKENS = 64


def _strip_invalid(tokens: Tokens) -> Tokens:
    return [
        t for t in tokens
        if V.is_known_word(t) and t not in V.NOISE_TOKENS
    ]


def _collapse_adjacent(tokens: Tokens) -> Tokens:
    out: Tokens = []
    for t in tokens:
        if out and out[-1] == t and t not in (".", "?", "!"):
            continue
        out.append(t)
    return out


def _trim_tail_loops(tokens: Tokens) -> Tokens:
    """Remove degenerate repeated n-grams at the end of the sequence."""
    out = list(tokens)
    changed = True
    while changed:
        changed = False
        for n in range(_MAX_LOOP_NGRAM, 0, -1):
            while len(out) >= 2 * n and out[-n:] == out[-2 * n : -n]:
                out = out[:-n]
                changed = True
    return out


def clean_revised_tokens(tokens: Tokens) -> Tokens:
    """Full cleanup pipeline for one revised field."""
    return _trim_tail_loops(_collapse_adjacent(_strip_invalid(tokens)))


def validate_revision(
    instruction_tokens: Tokens, response_tokens: Tokens
) -> bool:
    """Shape check: is this a valid instruction pair?

    Invalid outputs are replaced with the original pair by the caller,
    reproducing the paper's ~1.3% fallback rate.
    """
    if not instruction_tokens or not response_tokens:
        return False
    if len(instruction_tokens) > MAX_FIELD_TOKENS:
        return False
    if len(response_tokens) > MAX_FIELD_TOKENS:
        return False
    if len(instruction_tokens) < 2 or len(response_tokens) < 2:
        return False
    return True
