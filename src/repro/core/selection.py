"""α-selection of expert revision pairs (Section II-F2).

Including near-identity revisions (tiny edit distance) in coach tuning is
"akin to introducing negative samples": the coach learns to copy instead
of to revise.  The paper therefore keeps only the top-α fraction of the
expert revision dataset R, ranked by edit distance between the original
and revised pair.  α = 0.3 is the paper's main setting; α = 0 means no
training at all (the raw backbone is used for revision).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..experts.revision import RevisionRecord


def select_by_alpha(
    records: list[RevisionRecord], alpha: float
) -> list[RevisionRecord]:
    """Keep the top-α fraction of records by descending edit distance.

    Ties are broken by the original pair id so selection is deterministic.
    ``alpha=1`` keeps everything; ``alpha=0`` keeps nothing.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
    if alpha == 0.0:
        return []
    ranked = sorted(
        records,
        key=lambda r: (-r.edit_distance, r.original.pair_id),
    )
    keep = max(1, int(round(alpha * len(ranked)))) if ranked else 0
    return ranked[:keep]
