"""Coach instruction tuning (Section II-F1, Eq. (1)).

Adapts a backbone LM into CoachLM by LoRA-tuning it on Fig. 3-formatted
coach pairs x_c: the prompt asks for a revision of the original pair; the
completion is the expert-revised pair.  The loss covers only the
completion — exactly Eq. (1)'s conditional likelihood.  Seven epochs, as
in the paper; after training the adapters are merged for fast inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..experts.revision import RevisionRecord
from ..llm.prompts import encode_coach_example
from ..llm.tokenizer import WordTokenizer
from ..nn.lora import apply_lora, lora_parameters, merge_lora
from ..nn.trainer import LMTrainer, TrainExample, TrainStats
from ..nn.transformer import TransformerLM


@dataclass(frozen=True)
class CoachTrainingConfig:
    """Hyper-parameters of one coach tuning run (paper defaults noted)."""

    epochs: int = 7              #: paper: seven epochs
    learning_rate: float = 2.5e-3  #: paper: 2e-4 (scaled for tiny LMs)
    batch_size: int = 8
    lora_rank: int = 8
    lora_alpha: float = 16.0
    grad_clip: float = 1.0


def records_to_examples(
    tokenizer: WordTokenizer,
    records: list[RevisionRecord],
    max_seq_len: int,
) -> list[TrainExample]:
    """Encode revision records as Fig. 3 coach pairs, skipping over-long ones."""
    examples: list[TrainExample] = []
    for record in records:
        tokens, prompt_len = encode_coach_example(
            tokenizer, record.original, record.revised
        )
        if len(tokens) > max_seq_len + 1:
            continue
        examples.append(TrainExample(tuple(tokens), prompt_len))
    return examples


def train_coach_model(
    backbone: TransformerLM,
    tokenizer: WordTokenizer,
    records: list[RevisionRecord],
    rng: np.random.Generator,
    config: CoachTrainingConfig = CoachTrainingConfig(),
) -> tuple[TransformerLM, TrainStats]:
    """LoRA-tune a copy of ``backbone`` on the coach pairs.

    Returns the merged (adapter-free) coach model plus training stats.
    The backbone itself is never mutated, so one pre-trained backbone can
    serve many α settings.
    """
    if not records:
        raise ModelError("coach tuning requires at least one revision record")
    model = backbone.clone()
    apply_lora(model, rank=config.lora_rank, alpha=config.lora_alpha, rng=rng)
    examples = records_to_examples(tokenizer, records, model.config.max_seq_len)
    if not examples:
        raise ModelError("all coach examples exceeded the context window")
    trainer = LMTrainer(
        model,
        pad_id=tokenizer.specials.pad,
        lr=config.learning_rate,
        batch_size=config.batch_size,
        grad_clip=config.grad_clip,
        params=lora_parameters(model),
    )
    stats = trainer.train(examples, epochs=config.epochs, rng=rng)
    merge_lora(model)
    return model, stats
