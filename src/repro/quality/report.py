"""Dataset-level quality aggregation.

Produces the numbers the paper reports about datasets as a whole: mean
instruction/response scores (Table VIII), the share of pairs an expert
would revise (Section I: 46.8%), and per-dimension violation rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import InstructionDataset
from .scorer import CriteriaScorer, PairReport


@dataclass(frozen=True)
class DatasetQualityReport:
    """Aggregated rubric results over a dataset."""

    size: int
    mean_instruction_score: float
    mean_response_score: float
    needs_revision_fraction: float
    instruction_violation_rates: dict[str, float]
    response_violation_rates: dict[str, float]

    def summary_lines(self) -> list[str]:
        lines = [
            f"pairs scored            : {self.size}",
            f"mean instruction score  : {self.mean_instruction_score:.1f}",
            f"mean response score     : {self.mean_response_score:.1f}",
            f"needs-revision fraction : {self.needs_revision_fraction:.1%}",
        ]
        for side, rates in (
            ("instruction", self.instruction_violation_rates),
            ("response", self.response_violation_rates),
        ):
            for dim, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {side}.{dim:<18}: {rate:.1%} violated")
        return lines


def dataset_quality_report(
    dataset: InstructionDataset, scorer: CriteriaScorer | None = None
) -> DatasetQualityReport:
    """Score every pair in ``dataset`` and aggregate the findings."""
    scorer = scorer or CriteriaScorer()
    reports: list[PairReport] = [scorer.score_pair(p) for p in dataset]
    if not reports:
        return DatasetQualityReport(0, 0.0, 0.0, 0.0, {}, {})

    instr_viol: dict[str, int] = {}
    resp_viol: dict[str, int] = {}
    for report in reports:
        for finding in report.instruction.findings:
            if not finding.satisfied:
                instr_viol[finding.dimension] = instr_viol.get(finding.dimension, 0) + 1
        for finding in report.response.findings:
            if not finding.satisfied:
                resp_viol[finding.dimension] = resp_viol.get(finding.dimension, 0) + 1

    n = len(reports)
    return DatasetQualityReport(
        size=n,
        mean_instruction_score=float(np.mean([r.instruction.score for r in reports])),
        mean_response_score=float(np.mean([r.response.score for r in reports])),
        needs_revision_fraction=float(
            np.mean([r.needs_revision for r in reports])
        ),
        instruction_violation_rates={k: v / n for k, v in instr_viol.items()},
        response_violation_rates={k: v / n for k, v in resp_viol.items()},
    )
