"""The Table II quality rubric: nine dimensions, three levels, score caps.

* :mod:`repro.quality.dimensions` — the rubric's structure (dimensions,
  levels, score ranges) exactly as printed in Table II of the paper.
* :mod:`repro.quality.scorer` — a deterministic scorer that detects rubric
  violations from pair *text* (plus task provenance for oracle checks) and
  produces 0-100 scores honouring the level caps: red-line violations cap
  at 40, basic violations cap at 80, advanced dimensions claim the top 20.
* :mod:`repro.quality.report` — dataset-level aggregation.
"""

from .dimensions import (
    DIMENSIONS,
    INSTRUCTION_DIMENSIONS,
    LEVEL_ADVANCED,
    LEVEL_BASIC,
    LEVEL_RED_LINE,
    PERPLEXITY_DIMENSION,
    RESPONSE_DIMENSIONS,
    Dimension,
)
from .scorer import (
    CriteriaScorer,
    DimensionFinding,
    PairReport,
    ResponseAnalysis,
    SideReport,
    analyze_response,
)
from .report import DatasetQualityReport, dataset_quality_report

__all__ = [
    "DIMENSIONS",
    "INSTRUCTION_DIMENSIONS",
    "RESPONSE_DIMENSIONS",
    "LEVEL_ADVANCED",
    "LEVEL_BASIC",
    "LEVEL_RED_LINE",
    "PERPLEXITY_DIMENSION",
    "Dimension",
    "CriteriaScorer",
    "DimensionFinding",
    "PairReport",
    "ResponseAnalysis",
    "SideReport",
    "analyze_response",
    "DatasetQualityReport",
    "dataset_quality_report",
]
