"""Structure of the Table II evaluation criteria.

The paper grades INSTRUCTION and RESPONSE independently on 0-100 with nine
dimensions grouped into three importance levels:

* **red line** — safety; any violation caps the score at 40;
* **basic** — correctness, relevance, comprehensiveness, readability
  (response) and feasibility, readability (instruction); flaws cap at 80;
* **advanced** — richness, humanization (response) and contextualization
  (instruction); these claim the top 20 points.
"""

from __future__ import annotations

from dataclasses import dataclass

LEVEL_RED_LINE = "red_line"
LEVEL_BASIC = "basic"
LEVEL_ADVANCED = "advanced"

SIDE_INSTRUCTION = "instruction"
SIDE_RESPONSE = "response"


@dataclass(frozen=True)
class Dimension:
    """One rubric dimension exactly as listed in Table II."""

    name: str
    side: str
    level: str
    description: str
    score_range: tuple[int, int]


INSTRUCTION_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        "contextualization", SIDE_INSTRUCTION, LEVEL_ADVANCED,
        "The instruction includes a rich context or effective prompting "
        "skills to facilitate detailed and accurate responses.",
        (80, 100),
    ),
    Dimension(
        "feasibility", SIDE_INSTRUCTION, LEVEL_BASIC,
        "The instruction is clear, specific, feasible, and easily "
        "understandable.",
        (0, 80),
    ),
    Dimension(
        "readability", SIDE_INSTRUCTION, LEVEL_BASIC,
        "The instruction adheres to the conventions and stylistic norms "
        "of the target language.",
        (0, 80),
    ),
)

RESPONSE_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        "humanization", SIDE_RESPONSE, LEVEL_ADVANCED,
        "Responses should be warm, empathetic, and engaging, tailored to "
        "the user's background and preferences.",
        (90, 100),
    ),
    Dimension(
        "richness", SIDE_RESPONSE, LEVEL_ADVANCED,
        "Responses should be diverse, informative, creative, and expanded.",
        (80, 90),
    ),
    Dimension(
        "readability", SIDE_RESPONSE, LEVEL_BASIC,
        "Responses should use fluent, concise and correct language and be "
        "properly structured.",
        (40, 80),
    ),
    Dimension(
        "comprehensiveness", SIDE_RESPONSE, LEVEL_BASIC,
        "Responses comprehensively cover all necessary angles and "
        "information.",
        (40, 80),
    ),
    Dimension(
        "relevance", SIDE_RESPONSE, LEVEL_BASIC,
        "Responses should be effective and direct, and provide in-topic "
        "solutions.",
        (40, 80),
    ),
    Dimension(
        "correctness", SIDE_RESPONSE, LEVEL_BASIC,
        "Responses should be grounded in factual information, common "
        "sense, and logical reasoning.",
        (40, 80),
    ),
    Dimension(
        "safety", SIDE_RESPONSE, LEVEL_RED_LINE,
        "Responses should be harmless, protecting users' emotions, body "
        "and property.",
        (0, 40),
    ),
)

DIMENSIONS: tuple[Dimension, ...] = INSTRUCTION_DIMENSIONS + RESPONSE_DIMENSIONS

assert len(DIMENSIONS) == 10  # nine named dimensions; readability appears on both sides

#: Model-backed extension of the Table II rubric (not part of the paper's
#: nine dimensions, so deliberately excluded from :data:`DIMENSIONS`):
#: teacher-forced response perplexity under a reference LM, the signal
#: LIFT-style curation filters on.  Only reported when a
#: :class:`~repro.quality.scorer.CriteriaScorer` is constructed with a
#: perplexity backing model.
PERPLEXITY_DIMENSION = Dimension(
    "perplexity", SIDE_RESPONSE, LEVEL_BASIC,
    "The response reads as predictable, well-formed text to the "
    "reference language model: its teacher-forced perplexity stays "
    "under the configured threshold.",
    (40, 80),
)


def dimensions_for_side(side: str) -> tuple[Dimension, ...]:
    """All dimensions applying to ``instruction`` or ``response``."""
    if side == SIDE_INSTRUCTION:
        return INSTRUCTION_DIMENSIONS
    if side == SIDE_RESPONSE:
        return RESPONSE_DIMENSIONS
    raise ValueError(f"unknown side {side!r}")
