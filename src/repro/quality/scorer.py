"""Deterministic rubric scorer over instruction-pair text.

The scorer plays the role of the paper's language experts when they grade
pairs against Table II: it detects violations from the *surface text* (and
recomputes the oracle answer from task provenance for correctness checks),
then maps findings to a 0-100 score per side, honouring the level caps:

* red-line (safety) violation → score ≤ 40;
* any basic violation → score ≤ 80;
* advanced dimensions (richness, humanization / contextualization) award
  the final 20 points.

Design rule (DESIGN.md §5): the scorer never reads
``InstructionPair.injected_defects`` — everything is inferred from text,
exactly as an expert would, so CoachLM-revised and model-generated text is
scored by the same instrument as generated text.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScoringError
from ..textgen import vocabulary as V
from ..textgen.responses import detokenize, has_context_marker
from ..textgen.tasks import get_category, render_instruction, solve
from ..data.instruction_pair import InstructionPair

Tokens = list[str]

#: Content lexicons used for relevance overlap checks.
_CONTENT_WORDS = frozenset(
    V.COLORS + V.ANIMALS + V.OBJECTS + V.ADJECTIVES + V.PLACES + V.NAMES
    + V.SUM_DIGITS
)

_TERMINALS = frozenset({".", "?", "!"})
_POLITE = tuple(V.POLITE_CODA)
_MACHINE = tuple(V.MACHINE_TONE_PREFIX)
_UNSAFE = tuple(V.UNSAFE_PHRASE)

#: Instruction markers of infeasible requests (Table III kinds).
_INFEASIBLE_MARKERS: tuple[tuple[str, ...], ...] = (
    ("link",),
    ("chords",),
    ("whole", "page"),
    ("photo",),
    ("image",),
    ("video",),
)


@dataclass(frozen=True)
class DimensionFinding:
    """Verdict for one rubric dimension on one side of a pair."""

    dimension: str
    satisfied: bool
    note: str = ""


@dataclass(frozen=True)
class SideReport:
    """Scored findings for one side (instruction or response)."""

    side: str
    score: float
    findings: tuple[DimensionFinding, ...]

    def violated(self, dimension: str) -> bool:
        for finding in self.findings:
            if finding.dimension == dimension:
                return not finding.satisfied
        raise ScoringError(f"no finding for dimension {dimension!r}")

    def satisfied(self, dimension: str) -> bool:
        return not self.violated(dimension)

    @property
    def violations(self) -> tuple[str, ...]:
        return tuple(f.dimension for f in self.findings if not f.satisfied)


@dataclass(frozen=True)
class PairReport:
    """Full rubric report: both sides of one pair."""

    instruction: SideReport
    response: SideReport

    @property
    def min_score(self) -> float:
        return min(self.instruction.score, self.response.score)

    @property
    def needs_revision(self) -> bool:
        """True when an expert following Table II would revise the pair.

        Revision is triggered by detected *flaws*: any violated response
        dimension (including a terse response lacking richness — Table IV's
        dominant "expand" bucket — and a machine tone), or a violated basic
        instruction dimension.  The mere absence of the advanced
        contextualization bonus does not trigger revision (the paper adds
        context in only 7% of instruction revisions).
        """
        if self.response.violations:
            return True
        basic_instruction = {"feasibility", "readability"}
        return any(v in basic_instruction for v in self.instruction.violations)


def _contains_phrase(tokens: Tokens, phrase: tuple[str, ...]) -> bool:
    n = len(phrase)
    return any(tuple(tokens[i : i + n]) == phrase for i in range(len(tokens) - n + 1))


def _strip_phrase(tokens: Tokens, phrase: tuple[str, ...]) -> Tokens:
    n = len(phrase)
    out: Tokens = []
    i = 0
    while i < len(tokens):
        if tuple(tokens[i : i + n]) == phrase:
            i += n
        else:
            out.append(tokens[i])
            i += 1
    return out


def _surface_flaws(
    tokens: Tokens, allowed_typos: frozenset[str] = frozenset()
) -> list[str]:
    """Count language-surface flaws: typos, garble, unknown words, repeats.

    ``allowed_typos`` whitelists misspellings that are legitimate content —
    the ``spelling_fix`` task *quotes* a typo in both its instruction and
    its explanation, which an expert would not count as a flaw.
    """
    flaws: list[str] = []
    for t in tokens:
        if t in V.TYPO_MAP:
            if t not in allowed_typos:
                flaws.append(f"typo:{t}")
        elif t in V.NOISE_TOKENS or not V.is_known_word(t):
            flaws.append(f"garble:{t}")
    for a, b in zip(tokens, tokens[1:]):
        if a == b and a not in _TERMINALS:
            flaws.append(f"repeat:{a}")
    return flaws


def _allowed_typos(pair: InstructionPair) -> frozenset[str]:
    if pair.provenance is not None and pair.provenance.category_id == "spelling_fix":
        typo = pair.provenance.slots.get("typo")
        if isinstance(typo, str):
            return frozenset({typo})
    return frozenset()


def _normalise(tokens: Tokens, keep_typos: frozenset[str] = frozenset()) -> Tokens:
    """Cleaned view used for oracle comparison (flaws are charged separately).

    ``keep_typos`` prevents auto-correcting misspellings that are the very
    subject of the task (``spelling_fix``): a response that fails to fix
    the quoted typo must *not* be silently normalised into a correct one.
    """
    out: Tokens = []
    for t in tokens:
        if t not in keep_typos:
            t = V.TYPO_MAP.get(t, t)
        if t in V.NOISE_TOKENS or not V.is_known_word(t):
            continue
        if out and out[-1] == t and t not in _TERMINALS:
            continue
        out.append(t)
    return out


def _strip_context(tokens: Tokens) -> Tokens:
    out = list(tokens)
    for opener in V.CONTEXT_OPENERS:
        out = _strip_phrase(out, tuple(opener))
    return _strip_phrase(out, tuple(V.EXAMPLE_MARKER))


def _core_answer(tokens: Tokens) -> Tokens:
    """Answer segment: everything before the first ``;`` or ``.``."""
    for i, t in enumerate(tokens):
        if t in (";", ".", "?", "!"):
            return tokens[:i]
    return list(tokens)


def _content_overlap(a: Tokens, b: Tokens) -> int:
    return len((_CONTENT_WORDS & set(a)) & set(b))


@dataclass(frozen=True)
class ResponseAnalysis:
    """Structural view of a response used by the scorer and the experts.

    Exposes the signals an expert reads off the text before judging it:
    the normalised body, the answer core, surface flaws split by kind,
    tone and termination markers.
    """

    body: tuple[str, ...]          #: tokens with machine-tone prefix stripped
    normalised: tuple[str, ...]    #: cleaned view for oracle comparison
    core: tuple[str, ...]          #: answer segment before the first ; or .
    typo_garble_flaws: tuple[str, ...]
    repeat_flaws: tuple[str, ...]
    polite: bool
    machine_tone: bool
    terminal_ok: bool

    @property
    def flaws(self) -> tuple[str, ...]:
        return self.typo_garble_flaws + self.repeat_flaws

    @property
    def because_cut(self) -> bool:
        """True when an explanation clause was started but cut short."""
        if "because" not in self.normalised:
            return False
        idx = tuple(self.normalised).index("because")
        tail = [t for t in self.normalised[idx + 1 :] if t not in _TERMINALS]
        return len(tail) < 3 or not self.terminal_ok


def analyze_response(pair: InstructionPair) -> ResponseAnalysis:
    """Compute the structural response view for one pair."""
    tokens = pair.response_tokens
    allowed = _allowed_typos(pair)
    machine_tone = _contains_phrase(tokens, _MACHINE)
    body = _strip_phrase(tokens, _MACHINE) if machine_tone else list(tokens)
    polite = _contains_phrase(body, _POLITE)
    body_wo_coda = _strip_phrase(body, _POLITE) if polite else body
    flaws = _surface_flaws(body_wo_coda, allowed)
    typo_garble = tuple(f for f in flaws if not f.startswith("repeat:"))
    repeats = tuple(f for f in flaws if f.startswith("repeat:"))
    terminal_ok = bool(body_wo_coda) and body_wo_coda[-1] in _TERMINALS
    normalised = _normalise(body_wo_coda, keep_typos=allowed)
    core = _core_answer(normalised)
    return ResponseAnalysis(
        body=tuple(body_wo_coda),
        normalised=tuple(normalised),
        core=tuple(core),
        typo_garble_flaws=typo_garble,
        repeat_flaws=repeats,
        polite=polite,
        machine_tone=machine_tone,
        terminal_ok=terminal_ok,
    )


class CriteriaScorer:
    """Scores pairs against the Table II rubric.

    Parameters
    ----------
    strict_context:
        When True (default), instructions only reach the advanced band with
        an explicit context marker, mirroring the rubric's 80-100 range for
        Contextualization.
    perplexity_model, perplexity_tokenizer, perplexity_threshold:
        Optional model backing for the extra ``perplexity`` response
        dimension (:data:`~repro.quality.dimensions.PERPLEXITY_DIMENSION`):
        when both model and tokenizer are given, every response side
        additionally reports whether its teacher-forced perplexity under
        that LM stays below ``perplexity_threshold`` — a violated finding
        counts as one more basic flaw.  Responses the backing cannot score
        (longer than the model context) pass the check rather than being
        punished for length.  Without a backing (the default) the scorer's
        reports and scores are unchanged.
    """

    def __init__(
        self,
        strict_context: bool = True,
        perplexity_model=None,
        perplexity_tokenizer=None,
        perplexity_threshold: float = 100.0,
    ):
        self.strict_context = strict_context
        if (perplexity_model is None) != (perplexity_tokenizer is None):
            raise ScoringError(
                "perplexity backing needs both a model and a tokenizer"
            )
        if perplexity_threshold <= 1.0:
            raise ScoringError(
                f"perplexity_threshold must exceed 1.0, got {perplexity_threshold}"
            )
        self.perplexity_model = perplexity_model
        self.perplexity_tokenizer = perplexity_tokenizer
        self.perplexity_threshold = perplexity_threshold

    def _perplexity_finding(self, pair: InstructionPair) -> DimensionFinding | None:
        """The model-backed finding, or None when no backing is configured."""
        if self.perplexity_model is None:
            return None
        if not pair.response_tokens:
            return DimensionFinding("perplexity", False, "empty response")
        from ..errors import GenerationError
        from ..scoring.ifd import conditioned_request
        from ..nn.decoding import SequenceScore

        request = conditioned_request(self.perplexity_tokenizer, pair)
        try:
            logprobs = self.perplexity_model.sequence_logprobs(
                request.prompt_ids, request.completion_ids
            )
        except GenerationError:
            return DimensionFinding("perplexity", True, "unscoreable: too long")
        ppl = SequenceScore(logprobs).perplexity
        return DimensionFinding(
            "perplexity",
            ppl < self.perplexity_threshold,
            f"ppl={ppl:.1f} threshold={self.perplexity_threshold:.1f}",
        )

    # -- instruction side --------------------------------------------------------
    def score_instruction(self, pair: InstructionPair) -> SideReport:
        tokens = pair.instruction_tokens
        if not tokens:
            findings = (
                DimensionFinding("feasibility", False, "empty instruction"),
                DimensionFinding("readability", False, "empty instruction"),
                DimensionFinding("contextualization", False),
            )
            return SideReport("instruction", 15.0, findings)

        allowed = _allowed_typos(pair)
        stripped = _strip_context(tokens)
        flaws = _surface_flaws(stripped, allowed)
        readability_ok = not flaws

        infeasible_notes: list[str] = []
        for marker in _INFEASIBLE_MARKERS:
            if _contains_phrase(stripped, marker):
                infeasible_notes.append(f"marker:{' '.join(marker)}")
        if _contains_phrase(stripped, _UNSAFE):
            infeasible_notes.append("unsafe request")
        normalised = _normalise(stripped, keep_typos=allowed)
        if normalised and normalised[-1] == ":":
            infeasible_notes.append("dangling payload separator")
        if pair.provenance is not None and not infeasible_notes:
            expected, payload_start = render_instruction(pair.provenance)
            if payload_start is not None and ":" not in normalised:
                infeasible_notes.append("payload missing entirely")
            elif len(normalised) <= len(expected) - 2 and _is_prefix(
                normalised, expected
            ):
                infeasible_notes.append("instruction cut short")
        feasible = not infeasible_notes

        context = has_context_marker(tokens)

        if not feasible:
            score = max(20.0, 48.0 - 6.0 * (len(infeasible_notes) - 1)
                        - 5.0 * len(flaws))
        elif not readability_ok:
            score = max(50.0, 78.0 - 9.0 * len(flaws))
        else:
            score = 95.0 if context else 82.0

        findings = (
            DimensionFinding("feasibility", feasible, "; ".join(infeasible_notes)),
            DimensionFinding("readability", readability_ok,
                             "; ".join(flaws[:4])),
            DimensionFinding("contextualization", context),
        )
        return SideReport("instruction", float(score), findings)

    # -- response side -------------------------------------------------------------
    def score_response(self, pair: InstructionPair) -> SideReport:
        tokens = pair.response_tokens

        if not tokens:
            findings = (
                DimensionFinding("safety", True),
                DimensionFinding("correctness", False, "empty response"),
                DimensionFinding("relevance", False, "empty response"),
                DimensionFinding("comprehensiveness", False, "empty response"),
                DimensionFinding("readability", False, "empty response"),
                DimensionFinding("richness", False),
                DimensionFinding("humanization", True),
            )
            extra = self._perplexity_finding(pair)
            if extra is not None:
                findings = findings + (extra,)
            return SideReport("response", 40.0, findings)

        # Red line first: any unsafe content caps the score at 40.
        unsafe_hits = sum(
            1 for i in range(len(tokens))
            if tuple(tokens[i : i + len(_UNSAFE)]) == _UNSAFE
        )
        if unsafe_hits:
            findings = (
                DimensionFinding("safety", False, f"{unsafe_hits} unsafe span(s)"),
                DimensionFinding("correctness", True),
                DimensionFinding("relevance", True),
                DimensionFinding("comprehensiveness", True),
                DimensionFinding("readability", True),
                DimensionFinding("richness", False),
                DimensionFinding("humanization", True),
            )
            extra = self._perplexity_finding(pair)
            if extra is not None:
                findings = findings + (extra,)
            return SideReport(
                "response", max(10.0, 38.0 - 10.0 * (unsafe_hits - 1)), findings
            )

        analysis = analyze_response(pair)
        machine_tone = analysis.machine_tone
        polite = analysis.polite
        flaws = list(analysis.flaws)
        readability_ok = not flaws and analysis.terminal_ok

        correctness_ok, relevance_ok, comprehensive_ok, rich = self._semantic_checks(
            pair, list(analysis.normalised), list(analysis.core),
            analysis.terminal_ok,
        )

        basic_violations = sum(
            1 for ok in (correctness_ok, relevance_ok, comprehensive_ok,
                         readability_ok) if not ok
        )
        perplexity_finding = self._perplexity_finding(pair)
        if perplexity_finding is not None and not perplexity_finding.satisfied:
            basic_violations += 1
        # Humanization is *violated* only by a machine tone; a missing
        # polite coda merely forgoes the advanced bonus (Table II: the
        # 90-100 band rewards a humanised tone, it does not punish neutral
        # tone as a flaw).
        human_violated = machine_tone
        human_bonus = polite and not machine_tone

        if basic_violations:
            score = max(
                42.0,
                76.0 - 9.0 * basic_violations - 2.0 * min(len(flaws), 4),
            )
        else:
            score = 80.0 + (8.0 if rich else 0.0) + (7.0 if human_bonus else 0.0)
            if machine_tone:
                score = min(score, 84.0)

        findings = (
            DimensionFinding("safety", True),
            DimensionFinding("correctness", correctness_ok),
            DimensionFinding("relevance", relevance_ok),
            DimensionFinding("comprehensiveness", comprehensive_ok),
            DimensionFinding("readability", readability_ok,
                             "; ".join(flaws[:4])),
            DimensionFinding("richness", rich),
            DimensionFinding("humanization", not human_violated,
                             "machine tone" if human_violated else ""),
        )
        if perplexity_finding is not None:
            findings = findings + (perplexity_finding,)
        return SideReport("response", float(score), findings)

    def _semantic_checks(
        self,
        pair: InstructionPair,
        normalised: Tokens,
        core: Tokens,
        terminal_ok: bool,
    ) -> tuple[bool, bool, bool, bool]:
        """Correctness / relevance / comprehensiveness / richness checks."""
        instance = pair.provenance
        instruction_content = set(pair.instruction_tokens) & _CONTENT_WORDS

        if instance is None:
            # No oracle available (e.g. Table III filter pairs): only the
            # checks that need no ground truth apply.
            rich = self._is_rich(normalised, creative=False)
            comprehensive_ok = terminal_ok
            return True, True, comprehensive_ok, rich

        creative = get_category(instance.category_id).task_class == "creative"
        answer, explanation = solve(instance)

        if creative:
            overlap = _content_overlap(normalised, list(instruction_content))
            relevance_ok = overlap >= 1 if instruction_content else len(normalised) >= 4
            correctness_ok = relevance_ok and len(normalised) >= 4
            comprehensive_ok = terminal_ok and len(normalised) >= 4
            rich = self._is_rich(normalised, creative=True)
            return correctness_ok, relevance_ok, comprehensive_ok, rich

        correctness_ok = core == list(answer)
        if correctness_ok:
            relevance_ok = True
        else:
            # Wrong-but-on-topic (shares tokens with the oracle answer, the
            # explanation, or the instruction's content words) is a
            # correctness issue; zero overlap means it is off topic.  A
            # numeric reply to a numeric question is always on topic even
            # when the number is wrong (miscalculations are correctness
            # flaws, not relevance flaws).
            oracle_tokens = set(answer) | set(explanation) | instruction_content
            numeric_on_topic = (
                len(core) >= 1 and core[0].isdigit()
                and len(answer) >= 1 and answer[0].isdigit()
            )
            relevance_ok = numeric_on_topic or bool(set(core) & oracle_tokens)
        answer_complete = _contains_seq(normalised, list(answer))
        started_because = "because" in normalised
        comprehensive_ok = answer_complete and (not started_because or terminal_ok)
        rich = self._is_rich(normalised, creative=False)
        return correctness_ok, relevance_ok, comprehensive_ok, rich

    @staticmethod
    def _is_rich(normalised: Tokens, creative: bool) -> bool:
        if creative:
            return normalised.count(".") >= 2 and len(normalised) >= 10
        if "because" not in normalised:
            return False
        tail = normalised[normalised.index("because") + 1 :]
        return len([t for t in tail if t not in _TERMINALS]) >= 3

    # -- pair level ------------------------------------------------------------------
    def score_pair(self, pair: InstructionPair) -> PairReport:
        """Score both sides of a pair."""
        return PairReport(
            instruction=self.score_instruction(pair),
            response=self.score_response(pair),
        )


def _is_prefix(candidate: Tokens, full: Tokens) -> bool:
    return len(candidate) <= len(full) and full[: len(candidate)] == candidate


def _contains_seq(haystack: Tokens, needle: Tokens) -> bool:
    if not needle:
        return True
    n = len(needle)
    return any(haystack[i : i + n] == needle for i in range(len(haystack) - n + 1))
