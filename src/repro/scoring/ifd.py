"""Instruction-Following Difficulty (IFD) of instruction pairs.

Reflection-Tuning's selection metric: teacher-force the response twice —
once conditioned on its instruction (the exact Alpaca training prompt of
:func:`repro.llm.prompts.encode_instruction_example`) and once with the
instruction stripped (just the ``response :`` template cue) — and take
the ratio of the two mean per-token NLLs::

    IFD(pair) = NLL(response | instruction) / NLL(response)

An IFD near 1 means the instruction contributes nothing to predicting
the response; above 1 it actively *hurts* (misaligned pair); well below
1 the pair is already easy.  Selection spends revision tokens on the
highest-IFD pairs first.

Both directions use the same completion tokenization as training
(response tokens + ``<eos>``), so conditioned NLL here is exactly the
masked loss of :mod:`repro.nn.trainer` on that example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.instruction_pair import InstructionPair
from ..errors import GenerationError
from ..llm.prompts import _ids, encode_instruction_prompt
from ..llm.tokenizer import WordTokenizer
from ..nn.decoding import BatchedEngine, ScoringRequest, SequenceScore
from ..nn.transformer import TransformerLM


@dataclass(frozen=True)
class PairIFD:
    """IFD verdict for one pair, with the raw quantities it derives from."""

    conditioned_nll: float    #: mean per-token NLL of response given instruction
    unconditioned_nll: float  #: mean per-token NLL of response alone
    ifd: float                #: conditioned_nll / unconditioned_nll
    response_perplexity: float  #: exp(conditioned_nll)
    n_tokens: int             #: scored completion tokens (response + eos)

    def as_dict(self) -> dict:
        """JSON-safe payload (serving results, cache entries)."""
        return {
            "conditioned_nll": self.conditioned_nll,
            "unconditioned_nll": self.unconditioned_nll,
            "ifd": self.ifd,
            "response_perplexity": self.response_perplexity,
            "n_tokens": self.n_tokens,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PairIFD":
        return cls(
            conditioned_nll=float(payload["conditioned_nll"]),
            unconditioned_nll=float(payload["unconditioned_nll"]),
            ifd=float(payload["ifd"]),
            response_perplexity=float(payload["response_perplexity"]),
            n_tokens=int(payload["n_tokens"]),
        )


def _completion_ids(tokenizer: WordTokenizer, pair: InstructionPair) -> list[int]:
    # Exactly the training-example completion: response tokens + <eos>.
    return _ids(tokenizer, pair.response) + [tokenizer.specials.eos]


def conditioned_request(
    tokenizer: WordTokenizer, pair: InstructionPair
) -> ScoringRequest:
    """Score the response under the full Alpaca instruction prompt."""
    return ScoringRequest(
        prompt_ids=encode_instruction_prompt(tokenizer, pair.instruction),
        completion_ids=_completion_ids(tokenizer, pair),
    )


def unconditioned_request(
    tokenizer: WordTokenizer, pair: InstructionPair
) -> ScoringRequest:
    """Score the response with the instruction stripped from the prompt.

    Keeps the ``response :`` template cue so the only difference from the
    conditioned pass is the instruction itself — the quantity IFD divides
    out is "how predictable is this response as generic model text".
    """
    sp = tokenizer.specials
    return ScoringRequest(
        prompt_ids=[sp.bos] + _ids(tokenizer, "response :"),
        completion_ids=_completion_ids(tokenizer, pair),
    )


def pair_ifd(conditioned: SequenceScore, unconditioned: SequenceScore) -> PairIFD:
    """Combine the two teacher-forced passes into one verdict."""
    cond = conditioned.mean_nll
    uncond = unconditioned.mean_nll
    if uncond <= 0.0:
        # A zero/negative NLL means the response is fully predictable
        # with no instruction at all; the ratio degenerates, so pin the
        # pair as maximally easy rather than dividing by ~0.
        ratio = 0.0
    else:
        ratio = cond / uncond
    return PairIFD(
        conditioned_nll=cond,
        unconditioned_nll=uncond,
        ifd=ratio,
        response_perplexity=conditioned.perplexity,
        n_tokens=conditioned.n_tokens,
    )


def score_pair_ifd(
    model: TransformerLM, tokenizer: WordTokenizer, pair: InstructionPair
) -> PairIFD:
    """Sequential IFD of one pair (the non-engine reference path).

    Raises :class:`~repro.errors.GenerationError` when either pass would
    exceed the model context.
    """
    cond = conditioned_request(tokenizer, pair)
    uncond = unconditioned_request(tokenizer, pair)
    return pair_ifd(
        SequenceScore(model.sequence_logprobs(cond.prompt_ids, cond.completion_ids)),
        SequenceScore(
            model.sequence_logprobs(uncond.prompt_ids, uncond.completion_ids)
        ),
    )


def dataset_ifd(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    pairs: list[InstructionPair],
    batch_size: int = 16,
    kv_page_tokens: int | None = None,
) -> list[PairIFD | None]:
    """IFD for every pair via one :meth:`BatchedEngine.score` pass.

    Pairs whose conditioned pass would not fit the model context come
    back as ``None`` (unscoreable — selection ranks them last).  Results
    are bitwise-identical to :func:`score_pair_ifd` per pair.
    """
    requests: list[ScoringRequest] = []
    scoreable: list[int] = []
    limit = model.config.max_seq_len
    for i, pair in enumerate(pairs):
        cond = conditioned_request(tokenizer, pair)
        uncond = unconditioned_request(tokenizer, pair)
        if len(cond.prompt_ids) + len(cond.completion_ids) > limit:
            continue
        if not pair.response:
            continue
        requests.extend((cond, uncond))
        scoreable.append(i)
    results: list[PairIFD | None] = [None] * len(pairs)
    if not requests:
        return results
    engine = BatchedEngine(
        model, max_batch=batch_size, kv_page_tokens=kv_page_tokens
    )
    scores = engine.score(requests)
    for slot, i in enumerate(scoreable):
        results[i] = pair_ifd(scores[2 * slot], scores[2 * slot + 1])
    return results


def check_scoreable(
    model: TransformerLM, tokenizer: WordTokenizer, pair: InstructionPair
) -> None:
    """Raise :class:`GenerationError` unless both IFD passes fit context."""
    if not pair.response:
        raise GenerationError("scoring needs a non-empty response")
    cond = conditioned_request(tokenizer, pair)
    if len(cond.prompt_ids) + len(cond.completion_ids) > model.config.max_seq_len:
        raise GenerationError(
            "pair exceeds the model context for teacher-forced scoring"
        )
