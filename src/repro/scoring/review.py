"""The revise→score→re-revise self-review loop (PAPERS.md Self-Review).

A coach revision is a *claim* of improvement; teacher-forced scoring
lets the model check the claim: accept a revision only when it lowers
the response's perplexity under its (possibly revised) instruction or
improves the pair's IFD.  Accepted revisions feed back into the coach —
greedy decoding is deterministic, so re-revising an *unchanged* pair is
pointless, but the accepted revision is a new input the coach may
improve further.  The loop stops at the first rejected round, the first
no-op revision, or ``max_rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..data.instruction_pair import InstructionPair
from ..errors import GenerationError
from .ifd import PairIFD, score_pair_ifd

if TYPE_CHECKING:  # no runtime import: core.coachlm imports this package
    from ..core.coachlm import CoachLM


@dataclass(frozen=True)
class ReviewDecision:
    """Verdict on one candidate revision."""

    accepted: bool
    reason: str           #: "perplexity" | "ifd" | "no_improvement" | "unscoreable"
    before: PairIFD
    after: PairIFD | None  #: None when the candidate could not be scored


def review_revision(before: PairIFD, after: PairIFD | None) -> ReviewDecision:
    """Accept iff the revision strictly lowers perplexity or IFD."""
    if after is None:
        return ReviewDecision(False, "unscoreable", before, after)
    if after.response_perplexity < before.response_perplexity:
        return ReviewDecision(True, "perplexity", before, after)
    if after.ifd < before.ifd:
        return ReviewDecision(True, "ifd", before, after)
    return ReviewDecision(False, "no_improvement", before, after)


@dataclass(frozen=True)
class SelfReviewResult:
    """Outcome of a full self-review loop on one pair."""

    pair: InstructionPair         #: best pair found (original if nothing passed)
    score: PairIFD                #: its IFD verdict
    decisions: tuple[ReviewDecision, ...]  #: one per revision round attempted

    @property
    def accepted_rounds(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def improved(self) -> bool:
        return self.accepted_rounds > 0


def self_review_revise(
    coach: "CoachLM", pair: InstructionPair, max_rounds: int = 2
) -> SelfReviewResult:
    """Run the revise→score→re-revise loop on one pair.

    Raises :class:`GenerationError` when the *original* pair cannot be
    teacher-force scored (no baseline to review against); candidate
    revisions that cannot be scored are simply rejected.
    """
    if coach.model is None:
        raise GenerationError("self-review needs a coach with a model")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    best = pair
    best_score = score_pair_ifd(coach.model, coach.tokenizer, pair)
    decisions: list[ReviewDecision] = []
    for _ in range(max_rounds):
        candidate, _outcome = coach.revise_pair(best)
        if (
            candidate.instruction == best.instruction
            and candidate.response == best.response
        ):
            break  # coach made no change; greedy decode won't change its mind
        try:
            candidate_score = score_pair_ifd(coach.model, coach.tokenizer, candidate)
        except GenerationError:
            candidate_score = None
        decision = review_revision(best_score, candidate_score)
        decisions.append(decision)
        if not decision.accepted:
            break
        assert candidate_score is not None
        best, best_score = candidate, candidate_score
    return SelfReviewResult(best, best_score, tuple(decisions))
