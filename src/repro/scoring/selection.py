"""Rank pairs by difficulty so revision budget goes where it helps most.

CoachLM revision costs engine tokens per pair; under a fixed budget the
right spend order is hardest-first.  :func:`rank_by_ifd` orders pair
indices by descending IFD (most instruction-misaligned first) and
:func:`select_top_k` splits them into a revise set and a keep set.
Unscoreable pairs (``None`` verdicts — e.g. longer than the model
context) rank last: we cannot show they need help, so they never
displace a measured-hard pair.
"""

from __future__ import annotations

from typing import Sequence

from .ifd import PairIFD


def rank_by_ifd(scores: Sequence[PairIFD | None]) -> list[int]:
    """Indices of ``scores`` from hardest (highest IFD) to easiest.

    Unscoreable entries come last; ties (including among ``None``)
    preserve dataset order so the ranking is deterministic.
    """
    def sort_key(i: int) -> tuple[int, float, int]:
        verdict = scores[i]
        if verdict is None:
            return (1, 0.0, i)
        return (0, -verdict.ifd, i)

    return sorted(range(len(scores)), key=sort_key)


def select_top_k(
    scores: Sequence[PairIFD | None], k: int
) -> tuple[list[int], list[int]]:
    """Split indices into (revise these ``k`` hardest, keep the rest).

    ``k`` beyond the number of scoreable pairs selects only scoreable
    ones — spending decode tokens on a pair we could not even score is
    never the best use of the budget.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    ranked = rank_by_ifd(scores)
    selected = [i for i in ranked if scores[i] is not None][:k]
    chosen = set(selected)
    rest = [i for i in range(len(scores)) if i not in chosen]
    return selected, rest
