"""Teacher-forced scoring and data-selection workloads.

Decoding asks the model *what comes next*; this package asks it *how
well does existing text fit* — the primitive behind a whole family of
data-curation workloads (Reflection-Tuning's IFD selection, LIFT-style
quality filtering, Self-Review acceptance loops; see PAPERS.md).  It
builds on :meth:`repro.nn.decoding.BatchedEngine.score`, whose per-token
logprobs are bitwise-pinned against the sequential
:meth:`repro.nn.transformer.TransformerLM.sequence_logprobs` reference:

* :mod:`repro.scoring.ifd` — Instruction-Following Difficulty: the
  ratio of the response's NLL conditioned on its instruction to its
  unconditioned NLL.  High IFD = the instruction barely helps the model
  predict the response = a hard / poorly-aligned pair.
* :mod:`repro.scoring.selection` — rank pairs by IFD and pick the
  top-k so revision tokens go where CoachLM helps most.
* :mod:`repro.scoring.review` — the revise→score→re-revise self-review
  loop: accept a revision only when it lowers response perplexity or
  improves IFD, then feed the accepted revision back to the coach.
"""

from .ifd import (
    PairIFD,
    conditioned_request,
    dataset_ifd,
    pair_ifd,
    score_pair_ifd,
    unconditioned_request,
)
from .review import ReviewDecision, SelfReviewResult, review_revision, self_review_revise
from .selection import rank_by_ifd, select_top_k

__all__ = [
    "PairIFD",
    "conditioned_request",
    "unconditioned_request",
    "pair_ifd",
    "score_pair_ifd",
    "dataset_ifd",
    "rank_by_ifd",
    "select_top_k",
    "ReviewDecision",
    "SelfReviewResult",
    "review_revision",
    "self_review_revise",
]
