"""Global configuration: scale presets, seeds, and RNG discipline.

Every stochastic component in the library takes an explicit seed (or a
:class:`numpy.random.Generator`).  Experiments are therefore reproducible
bit-for-bit given ``(ScaleConfig, seed)``.

Three presets mirror DESIGN.md section 6:

``ci``
    Tiny sizes used by the unit/integration test suite.
``bench``
    The default for the benchmark harness; large enough for the paper's
    qualitative shapes to be visible, small enough for a CPU.
``full``
    Paper-scale dataset counts (52k pairs).  Selected via the
    ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np

from .errors import ConfigError

#: Default master seed used across examples and benchmarks.
DEFAULT_SEED = 20240311

#: Default fleet width of the batched decoding engine — the single
#: source for every ``batch_size``/``max_batch`` default in the
#: revision and response-generation paths.
DEFAULT_GEN_BATCH_SIZE = 8


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (which uses :data:`DEFAULT_SEED` — *not* entropy — so that every
    run of the library is deterministic unless the caller opts out).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise ConfigError(f"seed must be an int or Generator, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` tagged by ``label``.

    Mixing in the label keeps parallel subsystems decorrelated even when they
    are created from the same parent seed in a different order.
    """
    label_hash = abs(hash(label)) % (2**31)
    child_seed = int(rng.integers(0, 2**31)) ^ label_hash
    return np.random.default_rng(child_seed)


@dataclass(frozen=True)
class ModelScale:
    """Width/depth of a tiny transformer LM at one scale preset."""

    d_model: int
    n_layers: int
    n_heads: int
    max_seq_len: int
    lora_rank: int

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ConfigError(
                f"d_model={self.d_model} must be divisible by n_heads={self.n_heads}"
            )


@dataclass(frozen=True)
class ScaleConfig:
    """All size knobs of one experiment scale.

    Attributes
    ----------
    name:
        Preset name (``ci`` / ``bench`` / ``full``).
    dataset_size:
        Number of pairs in the ALPACA52K-simulacrum.
    expert_sample_size:
        Number of pairs sampled for the expert revision campaign
        (6k in the paper).
    base_model / judge_hidden:
        Transformer scale for the tuned LLM simulacra.
    pretrain_steps / finetune_epochs / coach_epochs:
        Training budgets.  The paper trains CoachLM for seven epochs.
    batch_size / learning_rate:
        Optimiser settings (paper: lr 2e-4 for coach tuning).
    """

    name: str
    dataset_size: int
    expert_sample_size: int
    base_model: ModelScale
    large_model: ModelScale
    pretrain_steps: int
    finetune_epochs: int
    coach_epochs: int
    batch_size: int
    learning_rate: float
    coach_learning_rate: float = 2e-4
    max_new_tokens: int = 48
    #: Fleet width of the batched decoding engine (dataset revision and
    #: test-set response generation decode this many sequences per
    #: forward pass).
    gen_batch_size: int = DEFAULT_GEN_BATCH_SIZE
    #: Chunk size (prompt tokens) of the engine's interleaved prefill:
    #: while a fleet is decoding, a refill prompt advances by at most
    #: this many tokens per engine step, bounding the prefill stall seen
    #: by in-flight sequences.  ``None`` prefills refill prompts whole.
    prefill_chunk_tokens: int | None = None
    #: How many refill prompts advance their chunked prefill concurrently
    #: (one ragged chunk forward per engine step).  Only meaningful with
    #: ``prefill_chunk_tokens`` set; 1 reproduces single-slot admission.
    prefill_concurrency: int = 1
    #: Page size (tokens) of the engine's paged KV pool.  ``None`` (the
    #: offline default) keeps dense per-slot slabs — resident KV memory
    #: is ``gen_batch_size × max_seq_len`` whatever the fleet holds.
    #: Setting a page size switches to on-demand pages drawn from a
    #: shared free list through per-sequence block tables, so KV memory
    #: scales with *live tokens*; decoded tokens are identical either
    #: way.  64 matches the serving default.
    kv_page_tokens: int | None = None
    #: Total page budget of the paged pool (admission reserves each
    #: sequence's worst-case quota against it).  ``None`` sizes it to
    #: the dense worst case, ``gen_batch_size × ceil(max_seq_len /
    #: kv_page_tokens)`` — same capacity ceiling, lazily allocated.
    #: Requires ``kv_page_tokens``.
    kv_pool_pages: int | None = None
    #: Radix prefix cache over the paged pool: prompts sharing a prefix
    #: with an earlier prefill borrow its refcounted read-only pages,
    #: prefill from the first divergent token, and copy-on-write the
    #: shared boundary page on first write.  Off by default offline
    #: (batch jobs rarely repeat prompts); requires ``kv_page_tokens``.
    kv_prefix_cache: bool = False

    def __post_init__(self) -> None:
        # Fail at construction with a clear message instead of deep inside
        # the decoding engine or the trainer.
        if self.gen_batch_size < 1:
            raise ConfigError(
                f"gen_batch_size must be >= 1, got {self.gen_batch_size}"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ConfigError(
                "prefill_chunk_tokens must be >= 1, got "
                f"{self.prefill_chunk_tokens}"
            )
        if self.prefill_concurrency < 1:
            raise ConfigError(
                "prefill_concurrency must be >= 1, got "
                f"{self.prefill_concurrency}"
            )
        _validate_kv_paging(
            self.kv_page_tokens, self.kv_pool_pages, self.kv_prefix_cache
        )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_new_tokens < 1:
            raise ConfigError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )

    def scaled(self, **overrides: object) -> "ScaleConfig":
        """Return a copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def _validate_kv_paging(
    kv_page_tokens: int | None,
    kv_pool_pages: int | None,
    kv_prefix_cache: bool = False,
) -> None:
    """Shared validation of the paged-KV knobs (Scale and Serving configs)."""
    if kv_page_tokens is not None and kv_page_tokens < 1:
        raise ConfigError(
            f"kv_page_tokens must be >= 1, got {kv_page_tokens}"
        )
    if kv_pool_pages is not None:
        if kv_page_tokens is None:
            raise ConfigError(
                "kv_pool_pages requires kv_page_tokens (a paged KV cache)"
            )
        if kv_pool_pages < 1:
            raise ConfigError(
                f"kv_pool_pages must be >= 1, got {kv_pool_pages}"
            )
    if kv_prefix_cache and kv_page_tokens is None:
        raise ConfigError(
            "kv_prefix_cache requires kv_page_tokens (a paged KV cache)"
        )


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the online revision service (:mod:`repro.serving`).

    Attributes
    ----------
    max_batch:
        Fleet width of the server's continuous-batching engine.
    max_queue_depth:
        Admission-control bound: :meth:`RevisionServer.submit` raises
        :class:`~repro.errors.AdmissionError` when this many requests are
        already queued (back-pressure, not silent buffering).
    cache_capacity:
        Entries of the content-hash LRU result cache (0 disables caching
        and in-flight dedup).
    default_deadline_s:
        Per-request deadline applied when the caller supplies none;
        ``None`` means requests never expire in the queue.
    quality_gate_threshold:
        Rubric score (0-100) above which a pair skips revision entirely,
        mirroring the platform's rule-based precursor stage; ``None``
        disables gating.
    idle_wait_s:
        How long the serving worker blocks on an empty queue before
        re-checking for shutdown.
    prefill_chunk_tokens:
        Chunked-prefill interleaving of the server's engine: a
        late-arriving prompt advances by at most this many tokens per
        engine step while the fleet is decoding, so long prompts cannot
        stall in-flight requests for a whole prompt-length forward pass.
        Bounding the stall costs some saturated throughput (refills
        trickle in one chunk per step instead of arriving in one ragged
        batched prefill); ``BENCH_serving.json`` tracks the ratio.
        ``None`` disables chunking (refill prompts prefill whole).
    prefill_concurrency:
        How many late-arriving prompts advance their chunked prefill
        *concurrently*, in one ragged chunk forward per engine step.  At
        1 a burst of arrivals serializes behind a single admission slot;
        the default (the fleet width) lets the whole burst prefill
        together, collapsing admission-to-first-token latency under
        bursty load (``BENCH_serving.json`` tracks the ratio).  Only
        meaningful with ``prefill_chunk_tokens`` set.
    kv_page_tokens:
        Page size (tokens) of the server engine's paged KV pool.  The
        serving default (64) allocates KV pages on demand through
        per-sequence block tables, so resident KV memory follows the
        *live* fleet instead of the provisioned ``max_batch ×
        max_seq_len`` worst case, and slot compaction is an O(1) block
        -table move; ``GET /metrics`` exports the pool's ``free_pages``
        headroom so operators see admission pressure building before
        the queue starts returning 429s.  ``None`` restores dense
        per-slot slabs.  Served tokens are identical either way.
    kv_pool_pages:
        Total page budget of the pool (admission reserves each
        sequence's worst-case quota against it; requests beyond it wait
        in the queue).  ``None`` sizes it to the dense worst case —
        same ceiling, lazily allocated.  Requires ``kv_page_tokens``.
    kv_prefix_cache:
        Radix prefix cache over the paged pool: every revision request
        wraps its content in the same long coach-prompt template, so
        prompts sharing a prefix with an earlier prefill borrow its
        refcounted read-only pages, prefill only from the first
        divergent token, and copy-on-write the shared boundary page on
        first write.  ``GET /metrics`` exports the hit-rate and
        shared-page counters under ``engine.prefix_cache``.  Served
        tokens are identical either way.  ``None`` (the default) means
        *on whenever the pool is paged*; an explicit ``True`` requires
        ``kv_page_tokens``.
    preemption_enabled:
        Priority-tiered preemption: when admission is blocked on slots
        or pages for a strictly-higher-priority arrival, the engine
        evicts the lowest-priority active decode (O(1) block-table
        detach on the paged pool) and resumes it later with identical
        tokens — interactive latency degrades the bulk tier instead of
        collapsing under it.  ``False`` restores strict
        priority-ordered FIFO admission with no eviction.
    """

    max_batch: int = DEFAULT_GEN_BATCH_SIZE
    max_queue_depth: int = 256
    cache_capacity: int = 1024
    default_deadline_s: float | None = None
    quality_gate_threshold: float | None = None
    idle_wait_s: float = 0.005
    prefill_chunk_tokens: int | None = 64
    prefill_concurrency: int = DEFAULT_GEN_BATCH_SIZE
    kv_page_tokens: int | None = 64
    kv_pool_pages: int | None = None
    kv_prefix_cache: bool | None = None
    preemption_enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ConfigError(
                "prefill_chunk_tokens must be >= 1, got "
                f"{self.prefill_chunk_tokens}"
            )
        if self.prefill_concurrency < 1:
            raise ConfigError(
                "prefill_concurrency must be >= 1, got "
                f"{self.prefill_concurrency}"
            )
        _validate_kv_paging(
            self.kv_page_tokens,
            self.kv_pool_pages,
            bool(self.kv_prefix_cache),
        )
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.cache_capacity < 0:
            raise ConfigError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.quality_gate_threshold is not None and not (
            0.0 <= self.quality_gate_threshold <= 100.0
        ):
            raise ConfigError(
                "quality_gate_threshold must be within [0, 100], got "
                f"{self.quality_gate_threshold}"
            )
        if self.idle_wait_s <= 0:
            raise ConfigError(f"idle_wait_s must be > 0, got {self.idle_wait_s}")

    @property
    def kv_prefix_cache_enabled(self) -> bool:
        """Resolved prefix-cache switch: the ``None`` default follows the
        pool (on when paged, moot on dense slabs)."""
        if self.kv_prefix_cache is None:
            return self.kv_page_tokens is not None
        return self.kv_prefix_cache


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the multi-process serving fleet (:mod:`repro.serving.fleet`).

    Attributes
    ----------
    fleet_workers:
        Number of engine worker processes the supervisor spawns.  Each
        runs its own :class:`~repro.nn.decoding.BatchedEngine` behind a
        :class:`~repro.serving.scheduler.StreamingScheduler`, configured
        by :attr:`serving` — so total decode capacity is
        ``fleet_workers × serving.max_batch``.
    heartbeat_interval_s:
        How often each worker reports liveness (and its engine
        token/busy-time deltas) over its pipe.
    heartbeat_timeout_s:
        Silence threshold after which the supervisor declares a worker
        *hung*, kills it, requeues its in-flight jobs and restarts it.
        Must comfortably exceed the worst engine step time plus the
        heartbeat interval, or healthy-but-busy workers get shot.
    restart_backoff_s / restart_backoff_max_s:
        Exponential-backoff base and cap between a worker's death and
        its replacement: restart ``k`` waits ``base * 2**(k-1)``
        seconds, capped.
    max_worker_restarts:
        Restarts allowed per worker slot before the supervisor gives the
        slot up for dead and serves degraded on the survivors.
    requeue_budget:
        Times one job may be requeued after losing its worker before it
        is failed with a typed :class:`~repro.errors.WorkerLostError`.
        Requeues are at-most-once per death (a job whose result already
        arrived is never requeued), and every requeue re-decodes from
        scratch — greedy decode is deterministic, so a recomputed
        revision is token-for-token the one the dead worker was
        producing.
    max_queue_depth:
        Bound of the supervisor's priority queue.  Under pressure the
        fleet sheds lowest-priority-first: a full queue displaces its
        worst entry for a strictly higher-priority arrival (the
        displaced request resolves as ``shed``), and otherwise rejects
        with :class:`~repro.errors.OverloadError` → HTTP ``503`` +
        ``Retry-After``.
    shed_retry_after_s:
        The ``Retry-After`` horizon attached to shed/overload rejections.
    dispatch_depth_per_worker:
        Outstanding jobs the router keeps at one worker, as a multiple
        of its engine ``max_batch`` — 2 keeps a refill backlog behind
        the decode fleet without committing half the queue to a worker
        that may die.
    worker_ready_timeout_s:
        How long :meth:`EngineFleet.start` waits for the initial fleet
        to report ready.
    drain_timeout_s:
        Bound on the graceful-drain phase of :meth:`EngineFleet.stop`;
        workers still busy past it are killed (their jobs fail as
        requeue-exhausted rather than hang the shutdown).
    serving:
        Per-worker engine/cache knobs (a :class:`ServingConfig`); the
        fleet inherits its ``max_batch``, chunked-prefill and paged-KV
        settings, quality gate, and cache capacity (the supervisor runs
        the content cache, so per-request dedup spans the whole fleet).
    """

    fleet_workers: int = 2
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 5.0
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 2.0
    max_worker_restarts: int = 8
    requeue_budget: int = 2
    max_queue_depth: int = 256
    shed_retry_after_s: float = 1.0
    dispatch_depth_per_worker: int = 2
    worker_ready_timeout_s: float = 60.0
    drain_timeout_s: float = 60.0
    serving: ServingConfig = field(default_factory=ServingConfig)

    def __post_init__(self) -> None:
        if self.fleet_workers < 1:
            raise ConfigError(
                f"fleet_workers must be >= 1, got {self.fleet_workers}"
            )
        for name in ("heartbeat_interval_s", "restart_backoff_s",
                     "restart_backoff_max_s", "worker_ready_timeout_s",
                     "drain_timeout_s", "shed_retry_after_s"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be > 0, got {value}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ConfigError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_timeout_s} <= {self.heartbeat_interval_s}):"
                " a healthy worker would be declared hung between beats"
            )
        if self.max_worker_restarts < 0:
            raise ConfigError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.requeue_budget < 0:
            raise ConfigError(
                f"requeue_budget must be >= 0, got {self.requeue_budget}"
            )
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.dispatch_depth_per_worker < 1:
            raise ConfigError(
                "dispatch_depth_per_worker must be >= 1, got "
                f"{self.dispatch_depth_per_worker}"
            )


_CI = ScaleConfig(
    name="ci",
    dataset_size=240,
    expert_sample_size=120,
    base_model=ModelScale(d_model=32, n_layers=1, n_heads=4, max_seq_len=160, lora_rank=4),
    large_model=ModelScale(d_model=48, n_layers=2, n_heads=4, max_seq_len=160, lora_rank=4),
    pretrain_steps=40,
    finetune_epochs=1,
    coach_epochs=2,
    batch_size=16,
    learning_rate=3e-3,
    coach_learning_rate=3e-3,
    max_new_tokens=40,
)

_BENCH = ScaleConfig(
    name="bench",
    dataset_size=1200,
    expert_sample_size=800,
    base_model=ModelScale(d_model=64, n_layers=2, n_heads=8, max_seq_len=192, lora_rank=16),
    large_model=ModelScale(d_model=80, n_layers=2, n_heads=8, max_seq_len=192, lora_rank=16),
    pretrain_steps=550,
    finetune_epochs=3,
    # The paper trains CoachLM for seven epochs; our coach corpora are two
    # orders of magnitude smaller, so the bench preset adds a few epochs
    # to reach a comparable number of optimiser steps.
    coach_epochs=10,
    batch_size=24,
    learning_rate=1.5e-3,
    # Paper: LoRA lr 2e-4 — scaled up for tiny-LM step counts.
    coach_learning_rate=2.5e-3,
)

_FULL = ScaleConfig(
    name="full",
    dataset_size=52000,
    expert_sample_size=6000,
    base_model=ModelScale(d_model=128, n_layers=3, n_heads=8, max_seq_len=256, lora_rank=16),
    large_model=ModelScale(d_model=192, n_layers=4, n_heads=8, max_seq_len=256, lora_rank=16),
    pretrain_steps=4000,
    finetune_epochs=3,
    coach_epochs=7,
    batch_size=32,
    learning_rate=1e-3,
    coach_learning_rate=1.5e-3,
)

PRESETS: dict[str, ScaleConfig] = {"ci": _CI, "bench": _BENCH, "full": _FULL}


def get_scale(name: str | None = None) -> ScaleConfig:
    """Look up a scale preset.

    When ``name`` is ``None`` the ``REPRO_SCALE`` environment variable is
    consulted, defaulting to ``bench``.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "bench")
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale preset {name!r}; expected one of {sorted(PRESETS)}"
        ) from None
