"""Analysis utilities: histograms, linear fits, ASCII tables."""

from .histogram import RatingHistogram, build_rating_histogram
from .linear_fit import LinearFit, fit_line
from .tables import format_table

__all__ = [
    "RatingHistogram",
    "build_rating_histogram",
    "LinearFit",
    "fit_line",
    "format_table",
]
