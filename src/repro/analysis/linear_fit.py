"""Least-squares linear fit with R² — used for Fig. 5(b).

The paper fits Alpaca-human's win rate against the number of human-revised
samples (R² = 0.9799, slope 3.07%/k) and extrapolates the crossover with
Alpaca-CoachLM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class LinearFit:
    """y = slope·x + intercept with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def solve_for_y(self, y: float) -> float:
        """x at which the fitted line reaches ``y`` (crossover estimates)."""
        if self.slope == 0:
            raise ReproError("cannot invert a flat fit")
        return (y - self.intercept) / self.slope


def fit_line(xs: list[float], ys: list[float]) -> LinearFit:
    """Ordinary least squares over paired observations."""
    if len(xs) != len(ys):
        raise ReproError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ReproError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(
        slope=float(slope), intercept=float(intercept), r_squared=r_squared
    )
