"""ASCII table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def render_row(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells[1:])
    return "\n".join(lines)
