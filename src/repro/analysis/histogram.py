"""Rating histograms — Fig. 4 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class RatingHistogram:
    """A binned histogram of 0-5 ratings with summary statistics."""

    bin_edges: tuple[float, ...]
    counts: tuple[int, ...]
    mean: float
    high_quality_fraction: float  #: share of ratings >= 4.5

    @property
    def total(self) -> int:
        return sum(self.counts)

    def render(self, width: int = 40, title: str = "") -> str:
        """ASCII rendering of the histogram."""
        lines: list[str] = []
        if title:
            lines.append(title)
        peak = max(self.counts) if self.counts else 1
        for lo, hi, count in zip(self.bin_edges, self.bin_edges[1:], self.counts):
            bar = "#" * int(round(width * count / max(peak, 1)))
            lines.append(f"  [{lo:4.2f},{hi:4.2f}) {count:6d} {bar}")
        lines.append(
            f"  mean={self.mean:.2f}  >=4.5: {self.high_quality_fraction:.1%}"
            f"  n={self.total}"
        )
        return "\n".join(lines)


def build_rating_histogram(
    ratings: list[float], bin_width: float = 0.25
) -> RatingHistogram:
    """Bin 0-5 ratings; mirrors the Fig. 4 presentation."""
    if not ratings:
        raise ReproError("cannot build a histogram of zero ratings")
    if bin_width <= 0:
        raise ReproError(f"bin width must be positive, got {bin_width}")
    edges = np.arange(0.0, 5.0 + bin_width, bin_width)
    counts, _ = np.histogram(np.asarray(ratings), bins=edges)
    return RatingHistogram(
        bin_edges=tuple(float(e) for e in edges),
        counts=tuple(int(c) for c in counts),
        mean=float(np.mean(ratings)),
        high_quality_fraction=float(np.mean([r >= 4.5 for r in ratings])),
    )
