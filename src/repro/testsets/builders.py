"""Builders for the four instruction-following test sets of Table VI.

========  ====  ==========  ===================
Name      Size  Categories  Reference response
========  ====  ==========  ===================
CoachLM150  150     42      Human (group B experts, Section II-G)
PandaLM170  170     11      ChatGPT
Vicuna80     80      9      Bard
Self-Instruct252 252 15     Human
========  ====  ==========  ===================

Reference responses are composed at the grade matching their provenance
(:class:`~repro.textgen.responses.ResponseGrade`), which reproduces the
relative reference difficulty visible across Table IX's columns: Bard
references are the strongest, ChatGPT references the weakest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair, Origin
from ..errors import ConfigError
from ..textgen.responses import ResponseGrade, compose_reference, detokenize
from ..textgen.tasks import CATEGORY_IDS, TaskInstance, render_instruction, sample_instance


@dataclass(frozen=True)
class TestItem:
    """One test instruction with its reference response."""

    instruction: str
    reference: InstructionPair
    provenance: TaskInstance
    category_id: str


@dataclass(frozen=True)
class TestSet:
    """A named, ordered collection of test items."""

    name: str
    items: tuple[TestItem, ...]
    reference_grade: ResponseGrade

    def __len__(self) -> int:
        return len(self.items)

    @property
    def instructions(self) -> list[str]:
        return [item.instruction for item in self.items]

    @property
    def references(self) -> list[InstructionPair]:
        return [item.reference for item in self.items]

    @property
    def provenances(self) -> list[TaskInstance]:
        return [item.provenance for item in self.items]

    @property
    def n_categories(self) -> int:
        return len({item.category_id for item in self.items})


def _build(
    name: str,
    size: int,
    categories: tuple[str, ...],
    grade: ResponseGrade,
    rng: np.random.Generator,
) -> TestSet:
    if size <= 0:
        raise ConfigError(f"test-set size must be positive, got {size}")
    items: list[TestItem] = []
    for i in range(size):
        category_id = categories[i % len(categories)]
        instance = sample_instance(rng, category_id)
        tokens, _ = render_instruction(instance)
        instruction = detokenize(tokens)
        reference = InstructionPair(
            instruction=instruction,
            response=detokenize(compose_reference(instance, grade, rng)),
            provenance=instance,
            pair_id=f"{name}-{i:03d}",
            origin=Origin.HUMAN_WRITTEN,
        )
        items.append(
            TestItem(
                instruction=instruction,
                reference=reference,
                provenance=instance,
                category_id=category_id,
            )
        )
    return TestSet(name=name, items=tuple(items), reference_grade=grade)


#: Category slices reproducing Table VI's category counts.
_PANDALM_CATEGORIES = (
    "extract_color", "extract_number", "count_items", "sort_ascending",
    "grammar_fix", "add_numbers", "compare_bigger", "fact_color",
    "sentiment", "story_animal", "brainstorm_uses",
)

_VICUNA_CATEGORIES = (
    # writing, role-play, math, knowledge — the Vicuna80 mix
    "story_place", "poem_color", "slogan", "roleplay_guide",
    "add_numbers", "subtract_numbers", "fact_color", "object_use",
    "kind_wish",
)

_SELFINSTRUCT_CATEGORIES = (
    "extract_color", "extract_animal", "extract_name", "count_items",
    "sort_descending", "reverse_list", "grammar_fix", "spelling_fix",
    "copy_exact", "add_numbers", "yes_no_bigger", "animal_home",
    "gift_advice", "dialogue_greeting", "headline_town",
)


def build_coachlm150(rng: np.random.Generator) -> TestSet:
    """CoachLM150: 150 real-world-style items across all 42 categories."""
    return _build("coachlm150", 150, CATEGORY_IDS, ResponseGrade.HUMAN, rng)


def build_pandalm170(rng: np.random.Generator) -> TestSet:
    """PandaLM170: 170 items, 11 categories, ChatGPT references."""
    return _build("pandalm170", 170, _PANDALM_CATEGORIES, ResponseGrade.CHATGPT, rng)


def build_vicuna80(rng: np.random.Generator) -> TestSet:
    """Vicuna80: 80 items, 9 categories, Bard (oracle-grade) references."""
    return _build("vicuna80", 80, _VICUNA_CATEGORIES, ResponseGrade.ORACLE, rng)


def build_selfinstruct252(rng: np.random.Generator) -> TestSet:
    """Self-Instruct252: 252 items, 15 categories, human references."""
    return _build(
        "selfinstruct252", 252, _SELFINSTRUCT_CATEGORIES,
        ResponseGrade.HUMAN_PLAIN, rng,
    )


TESTSET_BUILDERS = {
    "coachlm150": build_coachlm150,
    "pandalm170": build_pandalm170,
    "vicuna80": build_vicuna80,
    "selfinstruct252": build_selfinstruct252,
}


def build_testset(name: str, rng: np.random.Generator, size: int | None = None) -> TestSet:
    """Build a test set by name, optionally overridden in size (CI scale)."""
    try:
        builder = TESTSET_BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown test set {name!r}; expected one of {sorted(TESTSET_BUILDERS)}"
        ) from None
    testset = builder(rng)
    if size is not None and size < len(testset):
        return TestSet(
            name=testset.name,
            items=testset.items[:size],
            reference_grade=testset.reference_grade,
        )
    return testset
