"""The four instruction-following test sets (Table VI)."""

from .builders import (
    TestItem,
    TestSet,
    build_coachlm150,
    build_pandalm170,
    build_selfinstruct252,
    build_testset,
    build_vicuna80,
    TESTSET_BUILDERS,
)

__all__ = [
    "TestItem",
    "TestSet",
    "build_coachlm150",
    "build_pandalm170",
    "build_selfinstruct252",
    "build_vicuna80",
    "build_testset",
    "TESTSET_BUILDERS",
]
