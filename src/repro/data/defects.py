"""Defect taxonomy and injection — calibrated to the paper's Tables III/IV.

The paper's expert examination of 6k ALPACA52K pairs found:

* 1088 pairs (18.1%) unsuitable for revision (Table III: invalid input,
  beyond expertise, massive workload, multi-modal, safety);
* of the remainder, 46.8% deficient in at least one rubric dimension; all
  deficient pairs received RESPONSE revisions and 1079/2301 (46.9%) also
  received INSTRUCTION revisions, with the type distribution of Table IV.

Each defect below is a *textual* corruption: it changes the pair's surface
form so that the rubric scorer (and the expert simulator) can detect it
from the text alone.  The generator records which defects it planted in
``InstructionPair.injected_defects`` purely as ground truth for the test
suite — no pipeline component reads those labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..textgen import grammar, vocabulary as V
from ..textgen.responses import contextualize_instruction, detokenize
from ..textgen.tasks import (
    CATEGORY_IDS,
    TaskInstance,
    get_category,
    render_instruction,
    sample_instance,
    solve,
)
from .instruction_pair import InstructionPair, Origin

Tokens = list[str]


class DefectSide(enum.Enum):
    INSTRUCTION = "instruction"
    RESPONSE = "response"
    FILTER = "filter"


@dataclass(frozen=True)
class Defect:
    """One defect type with its calibration metadata.

    ``table4_bucket`` names the revision-type row of Table IV that fixing
    this defect falls under; ``dimension`` is the primary Table II dimension
    the defect violates.
    """

    name: str
    side: DefectSide
    dimension: str
    table4_bucket: str | None = None
    table3_category: str | None = None


_ALL: dict[str, Defect] = {}


def _def(defect: Defect) -> Defect:
    _ALL[defect.name] = defect
    return defect


# Response-side defects -----------------------------------------------------
RESP_TERSE = _def(Defect("resp_terse", DefectSide.RESPONSE,
                         "richness", table4_bucket="expand"))
RESP_TRUNCATED = _def(Defect("resp_truncated", DefectSide.RESPONSE,
                             "comprehensiveness", table4_bucket="expand"))
RESP_NOISY = _def(Defect("resp_noisy", DefectSide.RESPONSE,
                         "readability", table4_bucket="rewrite_content"))
RESP_IRRELEVANT = _def(Defect("resp_irrelevant", DefectSide.RESPONSE,
                              "relevance", table4_bucket="rewrite_content"))
RESP_WRONG_ANSWER = _def(Defect("resp_wrong_answer", DefectSide.RESPONSE,
                                "correctness", table4_bucket="rewrite_content"))
RESP_EMPTY = _def(Defect("resp_empty", DefectSide.RESPONSE,
                         "correctness", table4_bucket="rewrite_content"))
RESP_BAD_LAYOUT = _def(Defect("resp_bad_layout", DefectSide.RESPONSE,
                              "readability", table4_bucket="adjust_layout_tone"))
RESP_MACHINE_TONE = _def(Defect("resp_machine_tone", DefectSide.RESPONSE,
                                "humanization", table4_bucket="adjust_layout_tone"))
RESP_MISCALCULATION = _def(Defect("resp_miscalculation", DefectSide.RESPONSE,
                                  "correctness", table4_bucket="fix_calculation"))
RESP_UNSAFE = _def(Defect("resp_unsafe", DefectSide.RESPONSE,
                          "safety", table4_bucket="safety_other"))

# Instruction-side defects ---------------------------------------------------
INSTR_TYPOS = _def(Defect("instr_typos", DefectSide.INSTRUCTION,
                          "readability", table4_bucket="instr_readability"))
INSTR_NOISY = _def(Defect("instr_noisy", DefectSide.INSTRUCTION,
                          "readability", table4_bucket="instr_readability"))
INSTR_AMBIGUOUS = _def(Defect("instr_ambiguous", DefectSide.INSTRUCTION,
                              "feasibility", table4_bucket="instr_feasibility"))
INSTR_NEEDS_CONTEXT = _def(Defect("instr_needs_context", DefectSide.INSTRUCTION,
                                  "contextualization",
                                  table4_bucket="instr_contextualization"))

# Filter-class defects (Table III) -------------------------------------------
FILTER_INVALID_INPUT = _def(Defect("filter_invalid_input", DefectSide.FILTER,
                                   "feasibility", table3_category="invalid_input"))
FILTER_BEYOND_EXPERTISE = _def(Defect("filter_beyond_expertise", DefectSide.FILTER,
                                      "feasibility",
                                      table3_category="beyond_expertise"))
FILTER_MASSIVE_WORKLOAD = _def(Defect("filter_massive_workload", DefectSide.FILTER,
                                      "feasibility",
                                      table3_category="massive_workload"))
FILTER_MULTIMODAL = _def(Defect("filter_multimodal", DefectSide.FILTER,
                                "feasibility", table3_category="multimodal"))
FILTER_TOXIC = _def(Defect("filter_toxic", DefectSide.FILTER,
                           "safety", table3_category="safety"))

DEFECTS: dict[str, Defect] = dict(_ALL)
RESPONSE_DEFECTS = tuple(d for d in DEFECTS.values() if d.side is DefectSide.RESPONSE)
INSTRUCTION_DEFECTS = tuple(
    d for d in DEFECTS.values() if d.side is DefectSide.INSTRUCTION
)
FILTER_DEFECTS = tuple(d for d in DEFECTS.values() if d.side is DefectSide.FILTER)

#: Categories whose answer is a single number token (miscalculation targets).
NUMERIC_ANSWER_CATEGORIES = frozenset({
    "add_numbers", "subtract_numbers", "next_number", "count_items",
    "max_number", "min_number", "extract_number",
    "compare_bigger", "compare_smaller",
})

#: Categories whose oracle answer is constant (no wrong-answer variant exists).
CONSTANT_ANSWER_CATEGORIES = frozenset({
    "dialogue_greeting", "dialogue_farewell",
})


def compose_from_parts(
    category_id: str,
    answer: Tokens,
    explanation: Tokens,
    *,
    rich: bool,
    polite: bool,
) -> Tokens:
    """Compose a response from explicit answer/explanation parts.

    Mirrors :func:`repro.textgen.responses.compose_response` but allows the
    parts to come from a *wrong* or *irrelevant* oracle call.
    """
    creative = get_category(category_id).task_class == "creative"
    if creative or not explanation:
        body = list(answer)
        if not creative and not rich:
            body = list(answer)
        elif creative and not rich and "." in body:
            body = body[: body.index(".")]
        tokens = body + ["."]
    elif rich:
        tokens = list(answer) + [";"] + list(explanation) + ["."]
    else:
        tokens = list(answer) + ["."]
    if polite:
        tokens = tokens + list(V.POLITE_CODA)
    return tokens


def _miscalculated_parts(instance: TaskInstance) -> tuple[Tokens, Tokens]:
    """Oracle parts with the numeric answer perturbed by one (off-by-one)."""
    answer, explanation = solve(instance)
    if len(answer) != 1 or not answer[0].isdigit():
        raise DatasetError(
            f"miscalculation defect needs a single numeric answer, "
            f"got {answer!r} for {instance.category_id}"
        )
    right = int(answer[0])
    wrong = right + 1 if right < 18 else right - 1
    wrong_tok = str(wrong)
    new_answer = [wrong_tok]
    new_explanation = [wrong_tok if t == answer[0] else t for t in explanation]
    return new_answer, new_explanation


def _wrong_answer_parts(
    instance: TaskInstance, rng: np.random.Generator
) -> tuple[Tokens, Tokens]:
    """Oracle parts of a *different* instance of the same category."""
    answer, _ = solve(instance)
    for _ in range(50):
        other = sample_instance(rng, instance.category_id)
        other_answer, other_expl = solve(other)
        if other_answer != answer:
            return other_answer, other_expl
    raise DatasetError(
        f"could not sample a differing answer for {instance.category_id}"
    )


def _irrelevant_parts(
    instance: TaskInstance, rng: np.random.Generator
) -> tuple[str, Tokens, Tokens]:
    """Oracle parts of an instance from a different category."""
    for _ in range(50):
        cid = CATEGORY_IDS[int(rng.integers(0, len(CATEGORY_IDS)))]
        if cid != instance.category_id:
            other = sample_instance(rng, cid)
            answer, explanation = solve(other)
            return cid, answer, explanation
    raise DatasetError("could not sample a different category")


def build_response(
    instance: TaskInstance,
    defect_names: tuple[str, ...],
    rng: np.random.Generator,
    *,
    polite: bool,
) -> Tokens:
    """Build a response for ``instance`` exhibiting the given defects."""
    defects = set(defect_names)
    if "resp_empty" in defects:
        return []

    compose_category = instance.category_id
    if "resp_irrelevant" in defects:
        compose_category, answer, explanation = _irrelevant_parts(instance, rng)
    elif "resp_miscalculation" in defects:
        answer, explanation = _miscalculated_parts(instance)
    elif "resp_wrong_answer" in defects:
        answer, explanation = _wrong_answer_parts(instance, rng)
    else:
        answer, explanation = solve(instance)

    rich = "resp_terse" not in defects
    if "resp_machine_tone" in defects:
        polite = False
    tokens = compose_from_parts(
        compose_category, answer, explanation, rich=rich, polite=polite
    )

    if "resp_truncated" in defects:
        tokens = grammar.truncate(tokens, rng, min_keep=max(1, len(answer) // 2))
    if "resp_noisy" in defects:
        tokens = grammar.inject_typos(tokens, rng)
        tokens = grammar.inject_noise(tokens, rng, count=1)
    if "resp_bad_layout" in defects:
        tokens = grammar.drop_terminal_period(tokens)
        tokens = grammar.duplicate_word(tokens, rng)
    if "resp_machine_tone" in defects:
        tokens = list(V.MACHINE_TONE_PREFIX) + tokens
    if "resp_unsafe" in defects:
        tokens = tokens + list(V.UNSAFE_PHRASE)
    return tokens


def build_instruction(
    instance: TaskInstance,
    defect_names: tuple[str, ...],
    rng: np.random.Generator,
    *,
    context: bool,
) -> Tokens:
    """Build an instruction for ``instance`` exhibiting the given defects."""
    defects = set(defect_names)
    tokens, payload_start = render_instruction(instance)
    if "instr_ambiguous" in defects:
        if payload_start is not None:
            tokens = tokens[:payload_start]
        elif len(tokens) > 2:
            tokens = tokens[: len(tokens) - 2]
    if "instr_typos" in defects:
        tokens = grammar.inject_typos(tokens, rng, max_typos=1)
    if "instr_noisy" in defects:
        tokens = grammar.inject_noise(tokens, rng, count=1)
    if context and not defects:
        tokens = contextualize_instruction(tokens, rng)
    return tokens


def build_pair(
    instance: TaskInstance,
    instr_defects: tuple[str, ...],
    resp_defects: tuple[str, ...],
    rng: np.random.Generator,
    *,
    polite: bool = True,
    context: bool = False,
    pair_id: str = "",
) -> InstructionPair:
    """Assemble a full pair with the requested defects planted."""
    for name in instr_defects + resp_defects:
        if name not in DEFECTS:
            raise DatasetError(f"unknown defect {name!r}")
    instruction = build_instruction(instance, instr_defects, rng, context=context)
    response = build_response(instance, resp_defects, rng, polite=polite)
    return InstructionPair(
        instruction=detokenize(instruction),
        response=detokenize(response),
        provenance=instance,
        pair_id=pair_id,
        origin=Origin.GENERATED,
        injected_defects=tuple(instr_defects) + tuple(resp_defects),
    )


# ---------------------------------------------------------------------------
# Filter-class pair builders (Table III)
# ---------------------------------------------------------------------------


def _filter_invalid_input(rng: np.random.Generator) -> InstructionPair:
    instruction = ["give", "the", "topic", "of", ":", "the", "link"]
    response = ["i", "cannot", "see", "the", "link", "."]
    return _filter_pair(instruction, response, "filter_invalid_input")


def _filter_beyond_expertise(rng: np.random.Generator) -> InstructionPair:
    instruction = ["write", "the", "chords", "for", "a", "minor", "scale"]
    response = ["the", "scale", "has", "chords", "."]
    return _filter_pair(instruction, response, "filter_beyond_expertise")


def _filter_massive_workload(rng: np.random.Generator) -> InstructionPair:
    filler: Tokens = []
    for _ in range(4):
        filler += [
            "the", str(V.COLORS[int(rng.integers(0, len(V.COLORS)))]),
            str(V.ANIMALS[int(rng.integers(0, len(V.ANIMALS)))]),
            str(V.VERBS_3RD[int(rng.integers(0, len(V.VERBS_3RD)))]),
            "near", "the", str(V.PLACES[int(rng.integers(0, len(V.PLACES)))]), ".",
        ]
    instruction = ["rewrite", "the", "whole", "page", ":"] + filler
    response = ["the", "page", "has", "words", "."]
    return _filter_pair(instruction, response, "filter_massive_workload")


def _filter_multimodal(rng: np.random.Generator) -> InstructionPair:
    kind = ("photo", "image", "video")[int(rng.integers(0, 3))]
    instruction = ["list", "the", "items", "in", "the", kind]
    response = ["i", "cannot", "see", "the", kind, "."]
    return _filter_pair(instruction, response, "filter_multimodal")


def _filter_toxic(rng: np.random.Generator) -> InstructionPair:
    instance = sample_instance(rng)
    instruction, _ = render_instruction(instance)
    response = list(V.UNSAFE_PHRASE) + ["."] + list(V.UNSAFE_PHRASE) + ["."]
    return InstructionPair(
        instruction=detokenize(list(instruction)),
        response=detokenize(response),
        provenance=instance,
        origin=Origin.GENERATED,
        injected_defects=("filter_toxic",),
    )


def _filter_pair(
    instruction: Tokens, response: Tokens, defect_name: str
) -> InstructionPair:
    return InstructionPair(
        instruction=detokenize(instruction),
        response=detokenize(response),
        provenance=None,
        origin=Origin.GENERATED,
        injected_defects=(defect_name,),
    )


FILTER_BUILDERS = {
    "filter_invalid_input": _filter_invalid_input,
    "filter_beyond_expertise": _filter_beyond_expertise,
    "filter_massive_workload": _filter_massive_workload,
    "filter_multimodal": _filter_multimodal,
    "filter_toxic": _filter_toxic,
}


def build_filter_pair(
    defect_name: str, rng: np.random.Generator, pair_id: str = ""
) -> InstructionPair:
    """Build a Table III filter-class pair of the given kind."""
    try:
        builder = FILTER_BUILDERS[defect_name]
    except KeyError:
        raise DatasetError(f"unknown filter defect {defect_name!r}") from None
    pair = builder(rng)
    if pair_id:
        pair = InstructionPair(
            instruction=pair.instruction,
            response=pair.response,
            provenance=pair.provenance,
            pair_id=pair_id,
            origin=pair.origin,
            injected_defects=pair.injected_defects,
        )
    return pair
