"""The instruction-pair record (Fig. 1 of the paper).

An :class:`InstructionPair` carries the two text fields every downstream
component consumes, plus two kinds of metadata:

``provenance``
    The :class:`~repro.textgen.tasks.TaskInstance` the pair was generated
    from.  It substitutes for the world knowledge a human rater has: the
    rubric scorer uses it to recompute the oracle answer.  It is *kept*
    through revision (revising a pair does not change which task it poses).

``injected_defects``
    The ground-truth labels of defects the generator planted.  **Test-suite
    use only** — no pipeline component reads them (the expert simulator and
    the scorer must detect flaws from the text itself, as real experts do).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..textgen.responses import tokenize
from ..textgen.tasks import TaskInstance


class Origin(enum.Enum):
    """Where a pair's current text came from."""

    GENERATED = "generated"            #: raw ALPACA52K-sim output
    EXPERT_REVISED = "expert_revised"  #: rewritten by the expert simulator
    COACHLM_REVISED = "coachlm_revised"  #: rewritten by CoachLM
    RULE_CLEANED = "rule_cleaned"      #: Alpaca-cleaned style regex cleanup
    MODEL_GENERATED = "model_generated"  #: produced by a tuned LLM simulacrum
    HUMAN_WRITTEN = "human_written"    #: test-set reference responses


@dataclass(frozen=True)
class InstructionPair:
    """One ``(INSTRUCTION, RESPONSE)`` training sample."""

    instruction: str
    response: str
    provenance: TaskInstance | None = None
    pair_id: str = ""
    origin: Origin = Origin.GENERATED
    injected_defects: tuple[str, ...] = ()

    @property
    def instruction_tokens(self) -> list[str]:
        return tokenize(self.instruction)

    @property
    def response_tokens(self) -> list[str]:
        return tokenize(self.response)

    @property
    def instruction_length(self) -> int:
        """Word count of the instruction (Table VII reports word lengths)."""
        return len(self.instruction_tokens)

    @property
    def response_length(self) -> int:
        """Word count of the response."""
        return len(self.response_tokens)

    def with_text(
        self, instruction: str, response: str, origin: Origin
    ) -> "InstructionPair":
        """Return a revised copy: new text, same provenance and id."""
        return replace(
            self, instruction=instruction, response=response, origin=origin
        )

    def to_json(self) -> dict:
        blob: dict = {
            "instruction": self.instruction,
            "response": self.response,
            "pair_id": self.pair_id,
            "origin": self.origin.value,
        }
        if self.provenance is not None:
            blob["provenance"] = self.provenance.to_json()
        if self.injected_defects:
            blob["injected_defects"] = list(self.injected_defects)
        return blob

    @staticmethod
    def from_json(blob: dict) -> "InstructionPair":
        provenance = None
        if "provenance" in blob:
            provenance = TaskInstance.from_json(blob["provenance"])
        return InstructionPair(
            instruction=blob["instruction"],
            response=blob["response"],
            provenance=provenance,
            pair_id=blob.get("pair_id", ""),
            origin=Origin(blob.get("origin", "generated")),
            injected_defects=tuple(blob.get("injected_defects", ())),
        )
