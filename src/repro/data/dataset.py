"""The instruction dataset container.

A thin, explicit wrapper over a list of :class:`InstructionPair` with the
operations the pipeline needs: JSONL persistence, deterministic sampling
and splitting, per-category statistics, and the Table VII length summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import DatasetError
from .instruction_pair import InstructionPair


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a dataset (feeds Table VII)."""

    size: int
    avg_instruction_length: float
    avg_response_length: float
    category_counts: dict[str, int]

    @property
    def n_categories(self) -> int:
        return len(self.category_counts)


class InstructionDataset:
    """An ordered, named collection of instruction pairs."""

    def __init__(self, pairs: Iterable[InstructionPair], name: str = "dataset"):
        self._pairs: list[InstructionPair] = list(pairs)
        self.name = name

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._pairs)

    def __getitem__(self, index: int) -> InstructionPair:
        return self._pairs[index]

    def __iter__(self) -> Iterator[InstructionPair]:
        return iter(self._pairs)

    @property
    def pairs(self) -> tuple[InstructionPair, ...]:
        return tuple(self._pairs)

    # -- functional transforms ----------------------------------------------------
    def map(
        self, fn: Callable[[InstructionPair], InstructionPair], name: str | None = None
    ) -> "InstructionDataset":
        """Apply ``fn`` to every pair, returning a new dataset."""
        return InstructionDataset(
            (fn(p) for p in self._pairs), name=name or self.name
        )

    def filter(
        self, predicate: Callable[[InstructionPair], bool], name: str | None = None
    ) -> "InstructionDataset":
        """Keep pairs satisfying ``predicate``, returning a new dataset."""
        return InstructionDataset(
            (p for p in self._pairs if predicate(p)), name=name or self.name
        )

    def extend(self, other: "InstructionDataset", name: str | None = None) -> "InstructionDataset":
        """Concatenate two datasets."""
        return InstructionDataset(
            list(self._pairs) + list(other._pairs),
            name=name or f"{self.name}+{other.name}",
        )

    def replace_pairs(
        self, replacements: dict[str, InstructionPair], name: str | None = None
    ) -> "InstructionDataset":
        """Swap in replacement pairs by ``pair_id`` (merge-back of revisions).

        Pairs whose id is not in ``replacements`` are kept unchanged.  This
        is how the paper's Alpaca-human dataset is built: the expert-revised
        subset is merged back into the full ALPACA52K dataset.
        """
        unknown = set(replacements) - {p.pair_id for p in self._pairs}
        if unknown:
            raise DatasetError(
                f"replacement ids not present in dataset: {sorted(unknown)[:5]}"
            )
        return InstructionDataset(
            (replacements.get(p.pair_id, p) for p in self._pairs),
            name=name or self.name,
        )

    # -- deterministic sampling ---------------------------------------------------
    def sample(
        self, n: int, rng: np.random.Generator, name: str | None = None
    ) -> "InstructionDataset":
        """Uniform sample of ``n`` pairs without replacement."""
        if n > len(self._pairs):
            raise DatasetError(
                f"cannot sample {n} pairs from a dataset of {len(self._pairs)}"
            )
        idx = rng.choice(len(self._pairs), size=n, replace=False)
        return InstructionDataset(
            (self._pairs[int(i)] for i in sorted(idx)),
            name=name or f"{self.name}-sample{n}",
        )

    def shuffled(self, rng: np.random.Generator) -> "InstructionDataset":
        order = rng.permutation(len(self._pairs))
        return InstructionDataset(
            (self._pairs[int(i)] for i in order), name=self.name
        )

    def split(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple["InstructionDataset", "InstructionDataset"]:
        """Random split into (head, tail) with ``fraction`` going to head."""
        if not 0.0 <= fraction <= 1.0:
            raise DatasetError(f"split fraction must be in [0, 1], got {fraction}")
        order = rng.permutation(len(self._pairs))
        cut = int(round(fraction * len(self._pairs)))
        head = [self._pairs[int(i)] for i in order[:cut]]
        tail = [self._pairs[int(i)] for i in order[cut:]]
        return (
            InstructionDataset(head, name=f"{self.name}-head"),
            InstructionDataset(tail, name=f"{self.name}-tail"),
        )

    # -- statistics ----------------------------------------------------------------
    def stats(self) -> DatasetStats:
        """Length and category statistics (Table VII columns)."""
        if not self._pairs:
            return DatasetStats(0, 0.0, 0.0, {})
        counts: dict[str, int] = {}
        for p in self._pairs:
            key = p.provenance.category_id if p.provenance else "<unprovenanced>"
            counts[key] = counts.get(key, 0) + 1
        return DatasetStats(
            size=len(self._pairs),
            avg_instruction_length=float(
                np.mean([p.instruction_length for p in self._pairs])
            ),
            avg_response_length=float(
                np.mean([p.response_length for p in self._pairs])
            ),
            category_counts=counts,
        )

    def by_id(self) -> dict[str, InstructionPair]:
        """Index the dataset by pair id (ids must be unique and non-empty)."""
        index: dict[str, InstructionPair] = {}
        for p in self._pairs:
            if not p.pair_id:
                raise DatasetError("pair without an id cannot be indexed")
            if p.pair_id in index:
                raise DatasetError(f"duplicate pair id {p.pair_id!r}")
            index[p.pair_id] = p
        return index

    # -- persistence -----------------------------------------------------------------
    def save_jsonl(self, path: str | Path) -> None:
        """Write the dataset as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for pair in self._pairs:
                fh.write(json.dumps(pair.to_json(), sort_keys=True))
                fh.write("\n")

    @classmethod
    def load_jsonl(cls, path: str | Path, name: str | None = None) -> "InstructionDataset":
        """Load a dataset previously written by :meth:`save_jsonl`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"dataset file not found: {path}")
        pairs: list[InstructionPair] = []
        with path.open("r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    pairs.append(InstructionPair.from_json(json.loads(line)))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise DatasetError(
                        f"malformed JSONL at {path}:{line_no}: {exc}"
                    ) from exc
        return cls(pairs, name=name or path.stem)
