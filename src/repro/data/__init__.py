"""Instruction pairs, datasets, and the ALPACA52K simulacrum.

* :mod:`repro.data.instruction_pair` — the ``(INSTRUCTION, RESPONSE)`` record
  (Fig. 1 of the paper) with provenance and origin tracking.
* :mod:`repro.data.defects` — the defect taxonomy calibrated to the paper's
  Tables III/IV, with injectors and the pair builder.
* :mod:`repro.data.dataset` — the dataset container with JSONL IO and stats.
* :mod:`repro.data.alpaca_generator` — generator profiles producing the
  ALPACA52K simulacrum and the auxiliary corpora (user conversations,
  proprietary alignment data, raw deployment cases).
"""

from .instruction_pair import InstructionPair, Origin
from .defects import (
    DEFECTS,
    FILTER_DEFECTS,
    INSTRUCTION_DEFECTS,
    RESPONSE_DEFECTS,
    Defect,
    DefectSide,
    build_pair,
)
from .dataset import DatasetStats, InstructionDataset
from .alpaca_generator import (
    ALPACA_PROFILE,
    CONVERSATION_PROFILE,
    PROPRIETARY_PROFILE,
    USER_CASE_PROFILE,
    GeneratorProfile,
    generate_dataset,
    rule_clean,
)

__all__ = [
    "InstructionPair",
    "Origin",
    "DEFECTS",
    "FILTER_DEFECTS",
    "INSTRUCTION_DEFECTS",
    "RESPONSE_DEFECTS",
    "Defect",
    "DefectSide",
    "build_pair",
    "DatasetStats",
    "InstructionDataset",
    "ALPACA_PROFILE",
    "CONVERSATION_PROFILE",
    "PROPRIETARY_PROFILE",
    "USER_CASE_PROFILE",
    "GeneratorProfile",
    "generate_dataset",
    "rule_clean",
]
