"""Generator profiles and the ALPACA52K simulacrum.

A :class:`GeneratorProfile` encodes the *quality distribution* of a corpus:
what fraction of pairs is unsuitable (Table III), what fraction is
deficient (Section I: 46.8%), and how defects are mixed (Table IV).  The
``ALPACA_PROFILE`` is calibrated to the paper's measurements of ALPACA52K;
the other profiles model the corpora behind the comparison LLMs of
Table IX and the deployment study:

* ``CONVERSATION_PROFILE`` — the 70k user-shared ChatGPT conversations that
  Vicuna is tuned on (good, but with user noise).
* ``PROPRIETARY_PROFILE`` — the curated alignment data behind the
  RL-tuned chat models (near-oracle quality).
* ``USER_CASE_PROFILE`` — raw user cases flowing into the Huawei data
  management platform (noisy; Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from ..errors import ConfigError, DatasetError
from ..textgen.tasks import CATEGORY_IDS, sample_instance
from .defects import (
    CONSTANT_ANSWER_CATEGORIES,
    DEFECTS,
    NUMERIC_ANSWER_CATEGORIES,
    build_filter_pair,
    build_pair,
)
from .dataset import InstructionDataset
from .instruction_pair import InstructionPair, Origin
from ..textgen import grammar
from ..textgen.responses import detokenize


def _frozen(mapping: Mapping[str, float]) -> Mapping[str, float]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class GeneratorProfile:
    """Quality distribution of one synthetic corpus.

    All ``*_mix`` mappings are normalised at sampling time, so weights only
    need to be proportional.
    """

    name: str
    #: Fraction of pairs that are Table III filter-class (1088/6000 = 0.181).
    filter_fraction: float
    #: Mix over the five Table III exclusion reasons.
    filter_mix: Mapping[str, float]
    #: Fraction of non-filter pairs with at least one defect (0.468).
    defective_fraction: float
    #: Mix over response-side defects (calibrated to Table IV buckets).
    response_defect_mix: Mapping[str, float]
    #: P(an instruction-side defect too | pair defective) (1079/2301 = 0.469).
    instruction_defect_fraction: float
    #: Mix over instruction-side defects (Table IV instruction rows).
    instruction_defect_mix: Mapping[str, float]
    #: P(polite coda | clean pair).
    polite_fraction: float
    #: P(contextualized instruction | clean pair).
    context_fraction: float

    def __post_init__(self) -> None:
        for mix_name in ("filter_mix", "response_defect_mix", "instruction_defect_mix"):
            mix = getattr(self, mix_name)
            object.__setattr__(self, mix_name, _frozen(mix))
            for key in mix:
                if key not in DEFECTS:
                    raise ConfigError(f"{mix_name} references unknown defect {key!r}")
        for frac_name in (
            "filter_fraction", "defective_fraction",
            "instruction_defect_fraction", "polite_fraction", "context_fraction",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{frac_name} must be in [0, 1], got {value}")


#: Calibrated to the paper's Table III (ratios of the 1088 excluded pairs).
_TABLE3_MIX = {
    "filter_invalid_input": 0.417,
    "filter_beyond_expertise": 0.277,
    "filter_massive_workload": 0.082,
    "filter_multimodal": 0.065,
    "filter_toxic": 0.159,
}

#: Calibrated so fixing these defects reproduces Table IV's response rows:
#: expand 43.7%, rewrite-content 24.5%, layout/tone 23.3%,
#: fix-calculation 6.7%, safety/other 1.9%.
#: ``resp_miscalculation`` only applies to numeric-answer categories
#: (~21% of pairs) and is redrawn otherwise, so its nominal weight is set
#: well above the target marginal.
_TABLE4_RESPONSE_MIX = {
    "resp_terse": 0.250,
    "resp_truncated": 0.155,
    "resp_noisy": 0.085,
    "resp_irrelevant": 0.065,
    "resp_wrong_answer": 0.055,
    "resp_empty": 0.010,
    "resp_bad_layout": 0.110,
    "resp_machine_tone": 0.100,
    "resp_miscalculation": 0.250,
    "resp_unsafe": 0.020,
}

#: Calibrated to Table IV's instruction rows: readability 68.1%,
#: feasibility 24.9%, contextualization 7.0%.
_TABLE4_INSTRUCTION_MIX = {
    "instr_typos": 0.50,
    "instr_noisy": 0.18,
    "instr_ambiguous": 0.25,
    "instr_needs_context": 0.07,
}

ALPACA_PROFILE = GeneratorProfile(
    name="alpaca52k-sim",
    filter_fraction=1088 / 6000,
    filter_mix=_TABLE3_MIX,
    defective_fraction=0.468,
    response_defect_mix=_TABLE4_RESPONSE_MIX,
    instruction_defect_fraction=1079 / 2301,
    instruction_defect_mix=_TABLE4_INSTRUCTION_MIX,
    polite_fraction=0.40,
    context_fraction=0.15,
)

CONVERSATION_PROFILE = GeneratorProfile(
    name="user-conversations-sim",
    filter_fraction=0.01,
    filter_mix=_TABLE3_MIX,
    defective_fraction=0.20,
    response_defect_mix={
        "resp_terse": 0.45,
        "resp_truncated": 0.15,
        "resp_noisy": 0.10,
        "resp_bad_layout": 0.20,
        "resp_machine_tone": 0.10,
    },
    instruction_defect_fraction=0.30,
    instruction_defect_mix=_TABLE4_INSTRUCTION_MIX,
    polite_fraction=0.55,
    context_fraction=0.25,
)

PROPRIETARY_PROFILE = GeneratorProfile(
    name="proprietary-alignment-sim",
    filter_fraction=0.0,
    filter_mix=_TABLE3_MIX,
    defective_fraction=0.04,
    response_defect_mix={"resp_terse": 0.7, "resp_bad_layout": 0.3},
    instruction_defect_fraction=0.10,
    instruction_defect_mix=_TABLE4_INSTRUCTION_MIX,
    polite_fraction=0.90,
    context_fraction=0.35,
)

USER_CASE_PROFILE = GeneratorProfile(
    name="user-cases-sim",
    filter_fraction=0.08,
    filter_mix=_TABLE3_MIX,
    defective_fraction=0.62,
    response_defect_mix=_TABLE4_RESPONSE_MIX,
    instruction_defect_fraction=0.60,
    instruction_defect_mix={
        "instr_typos": 0.55,
        "instr_noisy": 0.25,
        "instr_ambiguous": 0.18,
        "instr_needs_context": 0.02,
    },
    polite_fraction=0.15,
    context_fraction=0.03,
)


def _weighted_choice(
    rng: np.random.Generator, mix: Mapping[str, float]
) -> str:
    names = list(mix)
    weights = np.asarray([mix[n] for n in names], dtype=float)
    weights = weights / weights.sum()
    return names[int(rng.choice(len(names), p=weights))]


def _draw_response_defect(
    rng: np.random.Generator, mix: Mapping[str, float], category_id: str
) -> str:
    """Draw a response defect applicable to the pair's category."""
    for _ in range(20):
        name = _weighted_choice(rng, mix)
        if name == "resp_miscalculation" and category_id not in NUMERIC_ANSWER_CATEGORIES:
            continue
        if name == "resp_wrong_answer" and category_id in CONSTANT_ANSWER_CATEGORIES:
            continue
        return name
    return "resp_terse"


def generate_pair(
    rng: np.random.Generator,
    profile: GeneratorProfile,
    pair_id: str = "",
    category_id: str | None = None,
) -> InstructionPair:
    """Generate one pair according to ``profile``."""
    if rng.random() < profile.filter_fraction:
        kind = _weighted_choice(rng, profile.filter_mix)
        return build_filter_pair(kind, rng, pair_id=pair_id)

    instance = sample_instance(rng, category_id)
    defective = rng.random() < profile.defective_fraction
    if not defective:
        polite = rng.random() < profile.polite_fraction
        context = rng.random() < profile.context_fraction
        return build_pair(
            instance, (), (), rng, polite=polite, context=context, pair_id=pair_id
        )

    resp_defect = _draw_response_defect(
        rng, profile.response_defect_mix, instance.category_id
    )
    instr_defects: tuple[str, ...] = ()
    if rng.random() < profile.instruction_defect_fraction:
        instr_defects = (_weighted_choice(rng, profile.instruction_defect_mix),)
    polite = rng.random() < profile.polite_fraction * 0.5
    return build_pair(
        instance, instr_defects, (resp_defect,), rng,
        polite=polite, context=False, pair_id=pair_id,
    )


def generate_dataset(
    rng: np.random.Generator,
    size: int,
    profile: GeneratorProfile = ALPACA_PROFILE,
    name: str | None = None,
) -> InstructionDataset:
    """Generate a full corpus of ``size`` pairs under ``profile``.

    Pair ids are stable (``<name>-<index>``) so revised subsets can be
    merged back by id, reproducing the paper's Alpaca-human construction.
    """
    if size <= 0:
        raise DatasetError(f"dataset size must be positive, got {size}")
    name = name or profile.name
    pairs = [
        generate_pair(rng, profile, pair_id=f"{name}-{i:06d}")
        for i in range(size)
    ]
    return InstructionDataset(pairs, name=name)


def rule_clean(dataset: InstructionDataset) -> InstructionDataset:
    """The Alpaca-cleaned baseline: regex-style surface cleanup only.

    Reproduces what the paper credits to the Alpaca-cleaned project
    (Section I): fixing invalid formats with rules.  It strips garble,
    fixes known misspellings, collapses duplicated words and restores
    terminal punctuation — but it *cannot* repair deeper deficiencies
    (wrong answers, irrelevant or terse responses, ambiguous instructions),
    which is exactly the gap CoachLM targets.
    """

    def clean(pair: InstructionPair) -> InstructionPair:
        instr = grammar.fix_typos(grammar.strip_noise(pair.instruction_tokens))
        resp = grammar.dedupe_adjacent(
            grammar.fix_typos(grammar.strip_noise(pair.response_tokens))
        )
        if resp:
            resp = grammar.ensure_terminal_period(resp)
        return pair.with_text(
            detokenize(instr), detokenize(resp), Origin.RULE_CLEANED
        )

    return dataset.map(clean, name=f"{dataset.name}-cleaned")
