"""The group-C human evaluation panel (Tables VIII and X).

Three expert raters — R1, R2, R3 — independently score instructions and
responses 0-100 against the Table II rubric, blind to sample sources.
Each rater has a small individual leniency offset and observation noise,
reproducing the inter-rater spread the paper reports (e.g. Table VIII:
73.9 / 77.2 / 74.0 for the same revised responses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..quality.scorer import CriteriaScorer


@dataclass(frozen=True)
class HumanRater:
    """One rater: a leniency offset plus rating noise."""

    name: str
    bias: float
    sigma: float


DEFAULT_PANEL = (
    HumanRater("R1", bias=-0.8, sigma=2.5),
    HumanRater("R2", bias=+1.9, sigma=3.5),
    HumanRater("R3", bias=-0.3, sigma=2.5),
)


class HumanPanel:
    """Panel of independent human raters backed by the rubric."""

    def __init__(
        self,
        raters: tuple[HumanRater, ...] = DEFAULT_PANEL,
        scorer: CriteriaScorer | None = None,
    ):
        self.raters = raters
        self.scorer = scorer or CriteriaScorer()

    def rate_response(
        self, pair: InstructionPair, rng: np.random.Generator
    ) -> dict[str, float]:
        """Per-rater 0-100 scores of the pair's response."""
        latent = self.scorer.score_response(pair).score
        return self._observe(latent, rng)

    def rate_instruction(
        self, pair: InstructionPair, rng: np.random.Generator
    ) -> dict[str, float]:
        """Per-rater 0-100 scores of the pair's instruction."""
        latent = self.scorer.score_instruction(pair).score
        return self._observe(latent, rng)

    def _observe(
        self, latent: float, rng: np.random.Generator
    ) -> dict[str, float]:
        return {
            r.name: float(np.clip(latent + r.bias + rng.normal(0.0, r.sigma), 0, 100))
            for r in self.raters
        }

    @staticmethod
    def average_by_rater(rows: list[dict[str, float]]) -> dict[str, float]:
        """Column means over many rated samples (the Table VIII/X rows)."""
        if not rows:
            return {}
        names = rows[0].keys()
        out = {name: float(np.mean([row[name] for row in rows])) for name in names}
        out["Avg."] = float(np.mean(list(out.values())))
        return out
