"""The swap-debias comparison protocol and win-rate metrics.

Following AlpaGasus (Section III-A1): every comparison is rated twice with
the candidate order swapped; conflicting win/lose results collapse to a
tie, while win+tie (lose+tie) still counts as a win (lose).

Win-rate metrics over a test set (Section III-C1a):

* ``WR1 = (#win + 0.5·#tie) / #all``
* ``WR2 = #win / (#all − #tie)``
* ``QS  = (#win + #tie) / #all``  (share of responses reaching reference level)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..errors import JudgeError
from .base import Verdict


def merge_swapped(first_order: Verdict, swapped_order: Verdict) -> Verdict:
    """Combine the two orderings' verdicts (candidate's perspective).

    ``first_order`` is the verdict with the candidate listed first;
    ``swapped_order`` is the verdict *for the reference* when the reference
    is listed first, so it is flipped before merging.
    """
    a = first_order
    b = swapped_order.flipped()
    if a is b:
        return a
    if Verdict.TIE in (a, b):
        # win+tie → win; lose+tie → lose.
        return a if b is Verdict.TIE else b
    # Conflicting win/lose → tie.
    return Verdict.TIE


def compare_with_swap(
    judge,
    instruction: str,
    candidate: InstructionPair,
    reference: InstructionPair,
    rng: np.random.Generator,
) -> Verdict:
    """Debias a pairwise judge by rating both candidate orders."""
    first = judge.judge_single_order(instruction, candidate, reference, rng)
    swapped = judge.judge_single_order(instruction, reference, candidate, rng)
    return merge_swapped(first.verdict, swapped.verdict)


@dataclass(frozen=True)
class WinRateSummary:
    """Verdict counts plus the paper's three win-rate metrics."""

    wins: int
    ties: int
    losses: int

    @property
    def total(self) -> int:
        return self.wins + self.ties + self.losses

    @property
    def wr1(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.wins + 0.5 * self.ties) / self.total

    @property
    def wr2(self) -> float:
        denominator = self.total - self.ties
        if denominator == 0:
            return 0.0
        return self.wins / denominator

    @property
    def qs(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.wins + self.ties) / self.total

    @property
    def average(self) -> float:
        """Mean of WR1/WR2/QS — the Fig. 5 y-axis."""
        return (self.wr1 + self.wr2 + self.qs) / 3.0

    def as_row(self) -> dict[str, float]:
        return {"WR1": self.wr1, "WR2": self.wr2, "QS": self.qs}


def win_rates(verdicts: list[Verdict]) -> WinRateSummary:
    """Aggregate a list of merged verdicts."""
    return WinRateSummary(
        wins=sum(v is Verdict.WIN for v in verdicts),
        ties=sum(v is Verdict.TIE for v in verdicts),
        losses=sum(v is Verdict.LOSE for v in verdicts),
    )


def evaluate_model_on_testset(
    judge,
    candidates: list[InstructionPair],
    references: list[InstructionPair],
    rng: np.random.Generator,
) -> WinRateSummary:
    """Judge a model's responses against a test set's references.

    ``candidates[i]`` and ``references[i]`` must answer the same
    instruction (the model generated its response for that test item).
    """
    if len(candidates) != len(references):
        raise JudgeError(
            f"candidate/reference count mismatch: "
            f"{len(candidates)} vs {len(references)}"
        )
    verdicts: list[Verdict] = []
    for candidate, reference in zip(candidates, references):
        if candidate.instruction != reference.instruction:
            raise JudgeError("candidate and reference answer different items")
        verdicts.append(
            compare_with_swap(judge, candidate.instruction, candidate, reference, rng)
        )
    return win_rates(verdicts)
