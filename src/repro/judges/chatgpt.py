"""ChatGPT-as-rater simulacrum (the AlpaGasus protocol, Section III-A1b).

Rates the accuracy of a pair's RESPONSE on a 0-5 scale with a short
rationale.  The affine quality→rating map is calibrated so the original
ALPACA52K simulacrum reproduces Fig. 4(a): mean rating ≈ 3.95 with ≈ 17.7%
of pairs at or above 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair
from .base import JudgeNoise, RubricBackedJudge

#: Affine map latent-quality → 0-5 rating, calibrated on the ALPACA52K
#: simulacrum so that (a) the dataset mean lands near the paper's 3.95 and
#: (b) only the rich-and-polite band (quality ≥ 95) clears the 4.5 cut,
#: reproducing Fig. 4(a)'s ~17.7% high-quality share.
_SLOPE = 0.0362
_INTERCEPT = 1.10


@dataclass(frozen=True)
class ChatGPTRating:
    """One rating with its (templated) rationale."""

    score: float
    rationale: str


class ChatGPTJudge(RubricBackedJudge):
    """0-5 accuracy rater over instruction pairs."""

    def __init__(self, noise_sigma: float = 1.2):
        super().__init__(JudgeNoise(score_sigma=noise_sigma, position_bias=0.0))

    def rate(
        self, pair: InstructionPair, rng: np.random.Generator
    ) -> ChatGPTRating:
        """Rate one pair's response accuracy on [0, 5]."""
        observed = self._observe_quality(pair, rng)
        raw = _SLOPE * observed + _INTERCEPT
        score = float(np.clip(round(raw * 4) / 4.0, 0.0, 5.0))
        report = self.scorer.score_response(pair)
        if report.violations:
            rationale = (
                "the response has issues with "
                + ", ".join(report.violations)
            )
        else:
            rationale = "the response is accurate and well formed"
        return ChatGPTRating(score=score, rationale=rationale)

    def rate_dataset(
        self, dataset: InstructionDataset, rng: np.random.Generator
    ) -> list[float]:
        """Ratings for every pair (the Fig. 4 histogram input)."""
        return [self.rate(pair, rng).score for pair in dataset]

    @staticmethod
    def high_quality_fraction(ratings: list[float], cut: float = 4.5) -> float:
        """Share of ratings at or above ``cut`` (17.7% → 78.9% in the paper)."""
        if not ratings:
            return 0.0
        return float(np.mean([r >= cut for r in ratings]))
