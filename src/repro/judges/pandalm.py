"""PandaLM judge simulacrum (Section III-A1d).

PandaLM takes an instruction and two candidate responses and emits a
comparative conclusion — win / tie / lose — plus a rationale.  Our
simulacrum observes each candidate's latent rubric quality with noise,
applies a position bias toward the first-listed candidate (the bias the
swap protocol corrects), and declares a tie inside a dead band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..errors import JudgeError
from .base import JudgeNoise, RubricBackedJudge, Verdict


@dataclass(frozen=True)
class PandaLMJudgement:
    """One single-order judgement with its rationale."""

    verdict: Verdict
    margin: float
    rationale: str


class PandaLMJudge(RubricBackedJudge):
    """Comparative win/tie/lose judge.

    Parameters
    ----------
    noise_sigma:
        Observation noise on the 0-100 latent quality; drives the judge's
        ~88% agreement with the (less noisy) GPT-4 simulacrum.
    position_bias:
        Additive preference for the first-listed candidate.
    tie_band:
        Dead band within which candidates are judged equal.
    """

    def __init__(
        self,
        noise_sigma: float = 4.0,
        position_bias: float = 1.5,
        tie_band: float = 3.0,
    ):
        super().__init__(JudgeNoise(noise_sigma, position_bias))
        self.tie_band = tie_band

    def judge_single_order(
        self,
        instruction: str,
        first: InstructionPair,
        second: InstructionPair,
        rng: np.random.Generator,
    ) -> PandaLMJudgement:
        """Judge ``first`` vs ``second`` as listed (no swap correction).

        The verdict is from the perspective of ``first``.
        """
        if first.instruction != instruction or second.instruction != instruction:
            raise JudgeError("candidates answer different instructions")
        q_first = self._observe_quality(first, rng) + self.noise.position_bias
        q_second = self._observe_quality(second, rng)
        margin = q_first - q_second
        if margin > self.tie_band:
            verdict = Verdict.WIN
        elif margin < -self.tie_band:
            verdict = Verdict.LOSE
        else:
            verdict = Verdict.TIE
        rationale = (
            f"response 1 {'exceeds' if margin > 0 else 'trails'} response 2 "
            f"by {abs(margin):.1f} quality points on correctness, "
            f"conciseness and adherence to the instruction"
        )
        return PandaLMJudgement(verdict=verdict, margin=margin, rationale=rationale)
