"""GPT-4 pairwise judge simulacrum (Section III-A1c, Chiang et al. prompt).

Scores two candidate responses 0-10 each with a rationale.  Less noisy
than PandaLM but still position-biased ("reported evaluation biases when
swapping candidates"), so the same swap protocol applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..errors import JudgeError
from .base import JudgeNoise, RubricBackedJudge, Verdict


@dataclass(frozen=True)
class GPT4Judgement:
    """One single-order judgement: two 0-10 scores plus the verdict."""

    score_first: float
    score_second: float
    verdict: Verdict
    rationale: str


class GPT4Judge(RubricBackedJudge):
    """Pairwise 0-10 scorer with position bias."""

    def __init__(
        self,
        noise_sigma: float = 2.5,
        position_bias: float = 2.0,
        tie_band: float = 2.0,
    ):
        super().__init__(JudgeNoise(noise_sigma, position_bias))
        self.tie_band = tie_band

    def judge_single_order(
        self,
        instruction: str,
        first: InstructionPair,
        second: InstructionPair,
        rng: np.random.Generator,
    ) -> GPT4Judgement:
        """Score ``first`` and ``second`` as listed; verdict is for ``first``."""
        if first.instruction != instruction or second.instruction != instruction:
            raise JudgeError("candidates answer different instructions")
        q_first = self._observe_quality(first, rng) + self.noise.position_bias
        q_second = self._observe_quality(second, rng)
        margin = q_first - q_second
        if margin > self.tie_band:
            verdict = Verdict.WIN
        elif margin < -self.tie_band:
            verdict = Verdict.LOSE
        else:
            verdict = Verdict.TIE
        return GPT4Judgement(
            score_first=float(np.clip(q_first / 10.0, 0.0, 10.0)),
            score_second=float(np.clip(q_second / 10.0, 0.0, 10.0)),
            verdict=verdict,
            rationale=(
                "scores reflect helpfulness, relevance, accuracy and level "
                "of detail of each response"
            ),
        )
