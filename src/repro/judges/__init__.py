"""Evaluation judges (Table V of the paper).

All four evaluation instruments the paper uses, as simulacra driven by the
same Table II rubric scorer (plus judge-specific noise and biases):

* :mod:`repro.judges.chatgpt` — the AlpaGasus protocol: rate a response's
  accuracy 0-5 (used for the Fig. 4 dataset histograms);
* :mod:`repro.judges.gpt4` — pairwise 0-10 comparison with position bias;
* :mod:`repro.judges.pandalm` — comparative win/tie/lose judgements (the
  main Table IX instrument);
* :mod:`repro.judges.human` — the three group-C raters R1-R3 with
  individual leniency offsets (Tables VIII and X);
* :mod:`repro.judges.protocol` — the candidate-swap debiasing protocol and
  the WR1/WR2/QS win-rate metrics.
"""

from .base import JudgeNoise, Verdict
from .chatgpt import ChatGPTJudge
from .gpt4 import GPT4Judge
from .pandalm import PandaLMJudge
from .human import HumanPanel, HumanRater
from .protocol import (
    WinRateSummary,
    compare_with_swap,
    evaluate_model_on_testset,
    win_rates,
)

__all__ = [
    "Verdict",
    "JudgeNoise",
    "ChatGPTJudge",
    "GPT4Judge",
    "PandaLMJudge",
    "HumanPanel",
    "HumanRater",
    "WinRateSummary",
    "compare_with_swap",
    "evaluate_model_on_testset",
    "win_rates",
]
