"""Shared judge machinery: verdicts and noise models."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..quality.scorer import CriteriaScorer


class Verdict(enum.Enum):
    """Outcome of one pairwise comparison, from the candidate's viewpoint."""

    WIN = "win"
    TIE = "tie"
    LOSE = "lose"

    def flipped(self) -> "Verdict":
        if self is Verdict.WIN:
            return Verdict.LOSE
        if self is Verdict.LOSE:
            return Verdict.WIN
        return Verdict.TIE


@dataclass(frozen=True)
class JudgeNoise:
    """Noise model of an automatic judge.

    ``score_sigma`` is observation noise on the latent 0-100 quality;
    ``position_bias`` favours the first-listed candidate (the bias the
    paper's swap protocol exists to cancel).
    """

    score_sigma: float
    position_bias: float


class RubricBackedJudge:
    """Base for judges that observe latent quality through the rubric."""

    def __init__(self, noise: JudgeNoise, scorer: CriteriaScorer | None = None):
        self.noise = noise
        self.scorer = scorer or CriteriaScorer()

    def _observe_quality(
        self, pair: InstructionPair, rng: np.random.Generator
    ) -> float:
        """Latent response quality plus this judge's observation noise."""
        latent = self.scorer.score_response(pair).score
        return latent + rng.normal(0.0, self.noise.score_sigma)
